package wan

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"time"

	"prete/internal/obs"
	"prete/internal/persist"
)

// This file is the cross-site half of controller HA. PR 8's ReplicaSet
// assumes every replica shares one state directory — one fate-sharing
// domain, with the flock as the promotion arbiter. A SiteSet removes both
// assumptions: each standby site owns its *own* persist directory, fed by a
// persist.Replicator shipping CRC-framed records over wan.Transport (so the
// whole stream is fault-injectable), and leadership is a time-bounded
// wan.Lease renewed by heartbeats instead of a counted miss streak. With no
// shared flock, the only split-brain defense left is the agents' generation
// fence: a promoting site floors its generation above the highest leader
// generation its lease observed (persist.Options.MinGeneration), names
// itself in every fenced RPC, and the agents reject both the zombie's older
// generation and any equal-generation sibling claimant. The failover matrix
// rows F10-F14 prove that defense sufficient under partitions, corruption,
// lag, and load.

// ErrLeaseValid reports a promotion attempt while the leader's lease is
// still live: claiming now could split the brain purely by impatience, so
// the claim is refused locally before any network traffic.
var ErrLeaseValid = errors.New("wan: leader lease still valid")

// ErrClaimFenced reports a promotion claim that lost at the agents: another
// claimant already fenced the fleet at or above our generation. The site
// steps down and rejoins as a standby.
var ErrClaimFenced = errors.New("wan: promotion claim fenced by a sibling")

// SiteServer is a standby site's replication ingress: a loopback listener
// accepting MsgReplRecord/MsgReplSnapshot frames and handing them to the
// site's apply function, which returns the site's contiguous applied prefix
// and whether it wants a snapshot re-sync. Like the other wan endpoints it
// dies with its listener, so closing it models a site partition or crash.
type SiteServer struct {
	apply func(frame []byte, snapshot bool) (ack uint64, resync bool, errstr string)
	ln    net.Listener

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewSiteServer starts a replication ingress on a fresh loopback port.
// apply must be safe for concurrent use.
func NewSiteServer(apply func(frame []byte, snapshot bool) (uint64, bool, string)) (*SiteServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wan: site listen: %w", err)
	}
	s := &SiteServer{
		apply:  apply,
		ln:     ln,
		conns:  make(map[*conn]struct{}),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the ingress's listen address.
func (s *SiteServer) Addr() string { return s.ln.Addr().String() }

// Close severs the listener and every live connection. Idempotent.
func (s *SiteServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *SiteServer) track(c *conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *SiteServer) untrack(c *conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

func (s *SiteServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		cn := newConn(c)
		if !s.track(cn) {
			cn.close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(cn)
			s.serve(cn)
		}()
	}
}

func (s *SiteServer) serve(c *conn) {
	defer c.close()
	for {
		var req Request
		if err := c.readRequest(&req); err != nil {
			return
		}
		var resp *Response
		switch req.Type {
		case MsgReplRecord, MsgReplSnapshot:
			ack, resync, errstr := s.apply(req.Frame, req.Type == MsgReplSnapshot)
			resp = &Response{OK: errstr == "" && !resync, Err: errstr, Ack: ack, Resync: resync}
		default:
			resp = &Response{Err: fmt.Sprintf("site: unsupported message %q", req.Type)}
		}
		if err := c.writeResponse(resp); err != nil {
			return
		}
	}
}

// sitePipe adapts one wan.Conn to the persist.Pipe shipping contract.
type sitePipe struct {
	conn    Conn
	timeout time.Duration
}

// Ship delivers one replication frame and interprets the site's answer: a
// nil Response is a transport failure (retryable), Resync asks for a
// snapshot, and any other rejection is surfaced as an error.
func (p sitePipe) Ship(frame []byte, snapshot bool) (uint64, bool, error) {
	typ := MsgReplRecord
	if snapshot {
		typ = MsgReplSnapshot
	}
	resp, err := p.conn.RoundTrip(&Request{Type: typ, Frame: frame}, p.timeout)
	if resp == nil {
		return 0, false, err
	}
	if resp.Resync {
		return resp.Ack, true, nil
	}
	if !resp.OK {
		return resp.Ack, false, fmt.Errorf("wan: site refused frame: %s", resp.Err)
	}
	return resp.Ack, false, nil
}

// SiteOptions tunes a SiteSet.
type SiteOptions struct {
	// Sites is the number of cross-site standbys (site IDs 1..Sites).
	Sites int
	// LeaseTicks is the lease duration in logical-clock ticks; <= 0 selects
	// 3. A site may claim leadership only after going a full lease duration
	// without a successful heartbeat.
	LeaseTicks uint64
	// Clock is the lease time source; nil selects an internal LogicalClock
	// advanced once per Tick.
	Clock *LogicalClock
	// HeartbeatTimeout bounds one heartbeat round trip; <= 0 selects 500 ms.
	HeartbeatTimeout time.Duration
	// RetainRecords caps the leader-side replication buffer (see
	// persist.ReplicatorOptions); <= 0 selects persist's default.
	RetainRecords int
	// CompactEvery is each site store's compaction cadence (0 = persist's
	// default).
	CompactEvery int
	// Transport is what a promoted site dials the switch agents through;
	// nil selects TCPTransport.
	Transport Transport
	// Ship supplies the per-site replication-stream transport, dialed under
	// the peer name "repl/<id>" so each stream gets a decorrelated fault
	// stream; nil selects TCPTransport.
	Ship func(id int) Transport
	// Heartbeat supplies the per-site lease transport, dialed under
	// "lease/<id>"; nil selects TCPTransport.
	Heartbeat func(id int) Transport
	// Timeout and Retry tune the promoted controller's RPCs (zero values
	// keep the wan defaults).
	Timeout time.Duration
	Retry   RetryPolicy
	// Metrics receives the wan.georep.* series plus the persist.repl.*
	// series of the underlying replicator and appliers.
	Metrics *obs.Registry
	// Log records the ordered, wall-clock-free replication/lease/election
	// events the bit-identical-replay tests diff.
	Log *EventLog
}

func (o SiteOptions) withDefaults() SiteOptions {
	if o.LeaseTicks == 0 {
		o.LeaseTicks = 3
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 500 * time.Millisecond
	}
	if o.Transport == nil {
		o.Transport = TCPTransport{}
	}
	return o
}

// site is one cross-site standby: its own persist directory and store, the
// apply path fed by the leader's replicator, a lease renewed by heartbeats,
// and enough bookkeeping to audit a promotion.
type site struct {
	id    int
	dir   string
	srv   *SiteServer
	ship  Conn
	hb    Conn
	lease *Lease

	// Guarded by the owning SiteSet's mu.
	store       *persist.Store
	applier     *persist.Applier
	mirror      *EpochState
	lastApplied uint64
	takenOver   bool // promotion owns the directory; apply path detached
	missing     bool // currently in a heartbeat-miss streak
	promoted    bool
	fenced      int // claims lost at the agents
	resyncs     int64
}

// SiteStatus is a point-in-time snapshot of one site.
type SiteStatus struct {
	// ID is the site id (1-based; the leader is site 0).
	ID int
	// Epoch is the site's mirrored epoch (0 = nothing applied yet).
	Epoch uint64
	// Applied is the site's contiguous applied journal sequence.
	Applied uint64
	// LeaseRemaining is ticks until lease expiry (negative once expired).
	LeaseRemaining int64
	// LeaseGen is the highest leader generation the site's lease observed.
	LeaseGen uint64
	// Resyncs counts snapshot re-syncs applied at this site.
	Resyncs int64
	// FencedClaims counts promotion claims this site lost at the agents.
	FencedClaims int
	// Promoted reports the site now leads.
	Promoted bool
}

// SitePromotion is the outcome of a successful cross-site takeover.
type SitePromotion struct {
	// SiteID is the site that took over.
	SiteID int
	// Ctl is the promoted controller: fenced above every generation the
	// site's lease observed, state recovered from the site's own replicated
	// directory, agents dialed. Ownership passes to the caller.
	Ctl *Controller
	// Recovery is what the promoted controller recovered locally.
	Recovery *Recovery
	// MirrorMatch reports the apply-path mirror agreed exactly with the
	// durably recovered state.
	MirrorMatch bool
	// Reasserted and Degraded report the fleet-wide re-assert outcome.
	Reasserted, Degraded bool
	// Resyncs is how many snapshot re-syncs this site needed over its
	// standby lifetime (lag it had to recover from).
	Resyncs int64
	// Elapsed is the wall time from claim to hand-off complete.
	Elapsed time.Duration
}

// SiteSet manages the cross-site standbys of one controller: per-tick
// replication shipping, lease-renewing heartbeats, and promotion once a
// lease expires. Everything observable is tick-driven on a logical clock
// and seeded, so which site promotes, at what logical time, after how many
// re-syncs replays bit-identically for a fixed schedule and fault seed.
type SiteSet struct {
	agents map[string]string
	opt    SiteOptions
	clock  *LogicalClock
	repl   *persist.Replicator

	mu          sync.Mutex
	sites       []*site
	promoted    bool
	unreachable bool // leader-side partition: skip shipping
	lastDead    int64
}

// NewSiteSet builds opt.Sites cross-site standbys for the leader whose
// state directory is leaderDir and whose lease listens at leaseAddr. Each
// site i owns sitesRoot/site-<i> as its local state directory; agents is
// the switch fleet a promoted site will dial.
func NewSiteSet(leaderDir, sitesRoot, leaseAddr string, agents map[string]string, opt SiteOptions) (*SiteSet, error) {
	if leaderDir == "" || sitesRoot == "" {
		return nil, fmt.Errorf("wan: site set needs leader and site directories")
	}
	opt = opt.withDefaults()
	clock := opt.Clock
	if clock == nil {
		clock = NewLogicalClock()
	}
	repl, err := persist.NewReplicator(leaderDir, persist.ReplicatorOptions{
		RetainRecords: opt.RetainRecords,
		Metrics:       opt.Metrics,
	})
	if err != nil {
		return nil, err
	}
	ss := &SiteSet{agents: agents, opt: opt, clock: clock, repl: repl}
	for id := 1; id <= opt.Sites; id++ {
		if err := ss.addSite(id, sitesRoot, leaseAddr); err != nil {
			ss.Close()
			return nil, err
		}
	}
	return ss, nil
}

func (ss *SiteSet) addSite(id int, sitesRoot, leaseAddr string) error {
	s := &site{id: id, dir: filepath.Join(sitesRoot, fmt.Sprintf("site-%d", id))}
	st, err := persist.Open(s.dir, persist.Options{
		CompactEvery: ss.opt.CompactEvery,
		Metrics:      ss.opt.Metrics,
	})
	if err != nil {
		return fmt.Errorf("wan: site %d: open: %w", id, err)
	}
	s.store = st
	s.applier = persist.NewApplier(st, persist.ApplierOptions{Metrics: ss.opt.Metrics})
	srv, err := NewSiteServer(ss.applyFor(s))
	if err != nil {
		st.Close()
		return fmt.Errorf("wan: site %d: %w", id, err)
	}
	s.srv = srv
	shipTr := Transport(TCPTransport{})
	if ss.opt.Ship != nil {
		shipTr = ss.opt.Ship(id)
	}
	ship, err := shipTr.Dial(fmt.Sprintf("repl/%d", id), srv.Addr())
	if err != nil {
		srv.Close()
		st.Close()
		return fmt.Errorf("wan: site %d: dial repl: %w", id, err)
	}
	s.ship = ship
	hbTr := Transport(TCPTransport{})
	if ss.opt.Heartbeat != nil {
		hbTr = ss.opt.Heartbeat(id)
	}
	hb, err := hbTr.Dial(fmt.Sprintf("lease/%d", id), leaseAddr)
	if err != nil {
		ship.Close()
		srv.Close()
		st.Close()
		return fmt.Errorf("wan: site %d: dial lease: %w", id, err)
	}
	s.hb = hb
	s.lease = NewLease(ss.clock, ss.opt.LeaseTicks)
	ss.mu.Lock()
	ss.sites = append(ss.sites, s)
	ss.mu.Unlock()
	ss.repl.AddTarget(fmt.Sprintf("site-%d", id), sitePipe{conn: ship, timeout: ss.opt.HeartbeatTimeout})
	return nil
}

// applyFor builds site s's frame-apply function: validate and apply via the
// site's Applier, keep the decoded mirror current, and translate gap/corrupt
// errors into re-sync requests.
func (ss *SiteSet) applyFor(s *site) func([]byte, bool) (uint64, bool, string) {
	return func(frame []byte, snapshot bool) (uint64, bool, string) {
		ss.mu.Lock()
		ap := s.applier
		taken := s.takenOver
		ss.mu.Unlock()
		if taken || ap == nil {
			return 0, false, fmt.Sprintf("site %d: promotion in progress", s.id)
		}
		ack, err := ap.Apply(frame, snapshot)
		switch {
		case err == nil:
		case errors.Is(err, persist.ErrGap) || errors.Is(err, persist.ErrBadFrame):
			ss.opt.Metrics.Counter("wan.georep.resync_requests").Inc()
			ss.opt.Log.Addf("site %d resync request ack=%d", s.id, ack)
			return ack, true, ""
		default:
			return ack, false, err.Error()
		}
		ss.mu.Lock()
		defer ss.mu.Unlock()
		if ack > s.lastApplied {
			s.lastApplied = ack
			if state, derr := decodeEpochState(frameBody(frame)); derr == nil {
				s.mirror = state
			} else {
				ss.opt.Metrics.Counter("wan.georep.decode_errors").Inc()
			}
			if snapshot {
				s.resyncs++
				ss.opt.Metrics.Counter("wan.georep.site_resyncs").Inc()
				ss.opt.Log.Addf("site %d resynced epoch=%d", s.id, ack)
			} else {
				ss.opt.Log.Addf("site %d mirror epoch=%d", s.id, ack)
			}
		}
		return ack, false, ""
	}
}

// frameBody extracts the record body of an already-validated frame.
func frameBody(frame []byte) []byte {
	_, body, err := persist.DecodeReplFrame(frame)
	if err != nil {
		return nil
	}
	return body
}

// Clock returns the lease clock (tests advance it to force expiries).
func (ss *SiteSet) Clock() *LogicalClock { return ss.clock }

// ReplStats returns the underlying replicator's shipping accounting.
func (ss *SiteSet) ReplStats() persist.ReplStats { return ss.repl.Stats() }

// SetLeaderReachable models the leader side of a partition: while false,
// Tick stops driving the replication stream (the leader cannot reach any
// site), without touching the sites' heartbeats — those are governed by the
// lease endpoint and the per-site heartbeat transports.
func (ss *SiteSet) SetLeaderReachable(ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.unreachable = !ok
}

// Promoted reports whether a site from this set has taken over.
func (ss *SiteSet) Promoted() bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.promoted
}

// Status snapshots every site in id order.
func (ss *SiteSet) Status() []SiteStatus {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]SiteStatus, 0, len(ss.sites))
	for _, s := range ss.sites {
		st := SiteStatus{
			ID:             s.id,
			Applied:        s.lastApplied,
			LeaseRemaining: s.lease.Remaining(),
			LeaseGen:       s.lease.Gen(),
			Resyncs:        s.resyncs,
			FencedClaims:   s.fenced,
			Promoted:       s.promoted,
		}
		if s.mirror != nil {
			st.Epoch = s.mirror.Epoch
		}
		out = append(out, st)
	}
	return out
}

// Tick advances the cross-site machinery one deterministic step: the
// logical clock moves one tick, the leader ships pending journal records to
// every site, every un-promoted site heartbeats the lease, and if any
// site's lease has expired the lowest such site claims leadership. Tick
// returns the SitePromotion on success, (nil, nil) while the leader's lease
// holds, and ErrClaimFenced (wrapped) when a claim lost at the agents.
func (ss *SiteSet) Tick() (*SitePromotion, error) {
	now := ss.clock.Advance(1)
	ss.opt.Metrics.Counter("wan.georep.ticks").Inc()
	ss.mu.Lock()
	unreachable := ss.unreachable
	promoted := ss.promoted
	sites := append([]*site(nil), ss.sites...)
	ss.mu.Unlock()
	if !unreachable {
		if err := ss.repl.Tick(); err != nil {
			ss.opt.Metrics.Counter("wan.georep.ship_errors").Inc()
			ss.opt.Log.Addf("repl tick error")
		}
		if dead := ss.repl.Stats().TailDeadFiles; dead > ss.deadFilesSeen() {
			// Satellite of persist.TailStats: the leader's own directory has
			// files the tailer abandoned — alarm instead of shipping a silent
			// stale prefix forever.
			ss.setDeadFilesSeen(dead)
			ss.opt.Metrics.Counter("wan.georep.dead_file_alarms").Inc()
			ss.opt.Log.Addf("repl dead files n=%d", dead)
		}
	}
	for _, s := range sites {
		if s.promoted {
			continue
		}
		ss.heartbeatSite(s)
	}
	if promoted {
		return nil, nil
	}
	for _, s := range sites {
		if s.promoted {
			continue
		}
		if s.lease.Expired() {
			ss.opt.Metrics.Counter("wan.georep.elections").Inc()
			ss.opt.Log.Addf("election site=%d t=%d", s.id, now)
			return ss.Promote(s.id)
		}
	}
	return nil, nil
}

func (ss *SiteSet) deadFilesSeen() int64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.lastDead
}

func (ss *SiteSet) setDeadFilesSeen(n int64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	ss.lastDead = n
}

// heartbeatSite runs one lease renewal probe for site s.
func (ss *SiteSet) heartbeatSite(s *site) {
	ss.opt.Metrics.Counter("wan.georep.heartbeats").Inc()
	resp, err := s.hb.RoundTrip(&Request{Type: MsgPing}, ss.opt.HeartbeatTimeout)
	ok := err == nil && resp != nil && resp.OK
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if !ok {
		ss.opt.Metrics.Counter("wan.georep.misses").Inc()
		ss.opt.Log.Addf("site %d heartbeat miss rem=%d", s.id, s.lease.Remaining())
		s.missing = true
		return
	}
	s.lease.Renew(resp.Gen)
	if s.missing {
		ss.opt.Log.Addf("site %d lease recovered gen=%d", s.id, resp.Gen)
		s.missing = false
	}
}

// findSite returns the site with the given id.
func (ss *SiteSet) findSite(id int) *site {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, s := range ss.sites {
		if s.id == id {
			return s
		}
	}
	return nil
}

// Promote claims leadership for site id. The claim is local-first: the
// lease must have expired (time gate), the site detaches its apply path and
// re-opens its own directory with a generation floored above every leader
// generation its lease observed, and only then does it assert itself at the
// agents — a fence probe (ping) followed by a re-assert of the recovered
// last-good rates. A claim the agents refuse (a sibling already fenced the
// fleet) steps down: the controller is torn back down, the site re-opens as
// a standby, and ErrClaimFenced is returned. Unlike the shared-directory
// ReplicaSet there is NO cross-site lock — a partitioned sibling can always
// *claim*; the agents rejecting stale and tied generations are the sole
// defense, which is exactly what the F11 matrix row proves.
func (ss *SiteSet) Promote(id int) (*SitePromotion, error) {
	s := ss.findSite(id)
	if s == nil {
		return nil, fmt.Errorf("wan: no site %d", id)
	}
	ss.mu.Lock()
	if s.promoted {
		ss.mu.Unlock()
		return nil, fmt.Errorf("wan: site %d already leads", id)
	}
	ss.mu.Unlock()
	if !s.lease.Expired() {
		return nil, fmt.Errorf("wan: site %d: %w", id, ErrLeaseValid)
	}
	start := time.Now()
	minGen := s.lease.Gen() + 1
	resyncs, mirror := ss.detachApply(s)

	ctl, err := NewControllerTransport(ss.opt.Transport, ss.agents)
	if err != nil {
		ss.rejoinStandby(s)
		return nil, fmt.Errorf("wan: promote site %d: %w", id, err)
	}
	ctl.Metrics = ss.opt.Metrics
	ctl.Log = ss.opt.Log
	ctl.StateCompactEvery = ss.opt.CompactEvery
	ctl.LeaderID = fmt.Sprintf("site-%d", id)
	if ss.opt.Timeout > 0 {
		ctl.Timeout = ss.opt.Timeout
	}
	if ss.opt.Retry.MaxAttempts > 0 {
		ctl.Retry = ss.opt.Retry
	}
	rec, err := ctl.OpenStateFenced(s.dir, minGen)
	if err != nil {
		ctl.Close()
		ss.rejoinStandby(s)
		return nil, fmt.Errorf("wan: promote site %d: %w", id, err)
	}
	p := &SitePromotion{SiteID: id, Ctl: ctl, Recovery: rec, Resyncs: resyncs}
	p.MirrorMatch = reflect.DeepEqual(mirror, rec.State)
	if p.MirrorMatch {
		ss.opt.Metrics.Counter("wan.failover.mirror_match").Inc()
	} else {
		ss.opt.Metrics.Counter("wan.failover.mirror_mismatch").Inc()
	}
	ss.opt.Log.Addf("site promotion site=%d gen=%d warm=%v mirror_match=%v",
		id, rec.Generation, rec.Warm, p.MirrorMatch)

	// Fence probe before any state-bearing write: a ping stamped with
	// (gen, leader) either raises the fence fleet-wide or reveals that a
	// sibling already holds it.
	if perr := ctl.Ping(); perr != nil {
		if errors.Is(perr, ErrStale) {
			return nil, ss.stepDown(s, ctl, "claim")
		}
		p.Degraded = true
		ss.opt.Metrics.Counter("wan.georep.claim_degraded").Inc()
		ss.opt.Log.Addf("site %d claim probe degraded", id)
	}
	if last := ctl.LastGoodRates(); last != nil {
		if _, uerr := ctl.UpdateRates(last); uerr != nil {
			if errors.Is(uerr, ErrStale) {
				return nil, ss.stepDown(s, ctl, "reassert")
			}
			p.Degraded = true
			ss.opt.Metrics.Counter("wan.failover.reassert_errors").Inc()
			ss.opt.Log.Addf("failover reassert failed site=%d", id)
		} else {
			p.Reasserted = true
			ss.opt.Metrics.Counter("wan.failover.reasserts").Inc()
			ss.opt.Log.Addf("failover reassert site=%d epoch=%d", id, rec.Epoch)
		}
	}
	ss.mu.Lock()
	s.promoted = true
	ss.promoted = true
	ss.mu.Unlock()
	ss.repl.RemoveTarget(fmt.Sprintf("site-%d", id))
	p.Elapsed = time.Since(start)
	ss.opt.Metrics.Counter("wan.failover.promotions").Inc()
	ss.opt.Metrics.Timer("wan.failover.time").Observe(p.Elapsed)
	return p, nil
}

// detachApply hands the site's directory from the apply path to a
// promotion: the applier's store is closed (releasing the local flock) and
// the replication ingress starts refusing frames. Returns the site's
// standby-lifetime re-sync count and its mirror for the audit.
func (ss *SiteSet) detachApply(s *site) (int64, *EpochState) {
	ss.mu.Lock()
	s.takenOver = true
	st := s.store
	s.store = nil
	s.applier = nil
	resyncs := s.resyncs
	mirror := s.mirror
	ss.mu.Unlock()
	if st != nil {
		st.Close()
	}
	return resyncs, mirror
}

// stepDown unwinds a claim the agents refused: the half-promoted
// controller (and with it the site store it opened) is closed, the site
// re-opens its directory and resumes standby duty, and the loss is
// recorded. Returns the wrapped ErrClaimFenced.
func (ss *SiteSet) stepDown(s *site, ctl *Controller, phase string) error {
	ctl.Close()
	ss.rejoinStandby(s)
	ss.mu.Lock()
	s.fenced++
	ss.mu.Unlock()
	ss.opt.Metrics.Counter("wan.georep.fenced_claims").Inc()
	ss.opt.Log.Addf("site %d %s fenced; stepping down", s.id, phase)
	return fmt.Errorf("wan: site %d: %w", s.id, ErrClaimFenced)
}

// rejoinStandby re-opens a site's directory for standby duty after a failed
// promotion, re-attaching the apply path so replication resumes.
func (ss *SiteSet) rejoinStandby(s *site) {
	st, err := persist.Open(s.dir, persist.Options{
		CompactEvery: ss.opt.CompactEvery,
		Metrics:      ss.opt.Metrics,
	})
	if err != nil {
		ss.opt.Metrics.Counter("wan.georep.rejoin_errors").Inc()
		ss.opt.Log.Addf("site %d rejoin failed", s.id)
		return
	}
	ss.mu.Lock()
	s.store = st
	s.applier = persist.NewApplier(st, persist.ApplierOptions{Metrics: ss.opt.Metrics})
	s.lastApplied = st.LastSeq()
	s.takenOver = false
	ss.mu.Unlock()
	ss.opt.Log.Addf("site %d rejoined as standby epoch=%d", s.id, st.LastSeq())
}

// Close tears down every site (ship and heartbeat connections, replication
// ingress, local store) and the replicator. A promoted controller is NOT
// closed — its ownership passed to the caller. Idempotent.
func (ss *SiteSet) Close() error {
	ss.mu.Lock()
	sites := ss.sites
	ss.sites = nil
	ss.mu.Unlock()
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	for _, s := range sites {
		if s.ship != nil {
			keep(s.ship.Close())
		}
		if s.hb != nil {
			keep(s.hb.Close())
		}
		if s.srv != nil {
			keep(s.srv.Close())
		}
		if s.store != nil {
			keep(s.store.Close())
		}
	}
	keep(ss.repl.Close())
	return first
}
