package wan

import (
	"fmt"
	"net"
	"sort"
	"time"

	"prete/internal/obs"
)

// Controller is the centralized TE controller: it holds persistent
// connections to every switch agent, installs tunnels serially across the
// fleet, and pushes rate-adaptation updates.
type Controller struct {
	conns   map[string]*conn // by switch name
	Timeout time.Duration
	// Metrics, when non-nil, receives per-RPC counters (wan.rpc.count,
	// wan.rpc.errors, wan.rpc.<type>) and a wan.rpc.latency timer. The
	// instrumentation is write-only; protocol behaviour is unchanged.
	Metrics *obs.Registry
}

// rpc wraps a connection round trip with the controller's RPC metrics.
func (c *Controller) rpc(cn *conn, req *Request) (*Response, error) {
	t := c.Metrics.Timer("wan.rpc.latency")
	start := t.Start()
	resp, err := cn.roundTrip(req, c.Timeout)
	t.Stop(start)
	c.Metrics.Counter("wan.rpc.count").Inc()
	c.Metrics.Counter("wan.rpc." + string(req.Type)).Inc()
	if err != nil {
		c.Metrics.Counter("wan.rpc.errors").Inc()
	}
	return resp, err
}

// NewController dials the given agents (name -> address).
func NewController(agents map[string]string) (*Controller, error) {
	c := &Controller{conns: make(map[string]*conn, len(agents)), Timeout: 10 * time.Second}
	for name, addr := range agents {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("wan: dial %s (%s): %w", name, addr, err)
		}
		c.conns[name] = newConn(raw)
	}
	return c, nil
}

// Close tears down all connections.
func (c *Controller) Close() error {
	var first error
	for _, cn := range c.conns {
		if err := cn.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping round-trips every agent (connectivity check).
func (c *Controller) Ping() error {
	for name, cn := range c.conns {
		if _, err := c.rpc(cn, &Request{Type: MsgPing}); err != nil {
			return fmt.Errorf("wan: ping %s: %w", name, err)
		}
	}
	return nil
}

// TunnelInstall describes one tunnel to program on one switch.
type TunnelInstall struct {
	Switch   string
	TunnelID int
	Path     []int
}

// InstallTunnels programs the given tunnels one at a time — the serialized
// production behaviour of §5 — and returns the total wall time (Fig 11b's
// y-axis).
func (c *Controller) InstallTunnels(installs []TunnelInstall) (time.Duration, error) {
	start := time.Now()
	for _, ins := range installs {
		cn, ok := c.conns[ins.Switch]
		if !ok {
			return time.Since(start), fmt.Errorf("wan: unknown switch %q", ins.Switch)
		}
		if _, err := c.rpc(cn, &Request{
			Type: MsgInstallTunnel, TunnelID: ins.TunnelID, Path: ins.Path,
		}); err != nil {
			return time.Since(start), err
		}
	}
	return time.Since(start), nil
}

// UpdateRates pushes a rate-adaptation table to every switch ("only
// requires updating match-action entries at few switches", §2.1) and
// returns the wall time.
func (c *Controller) UpdateRates(rates map[string]float64) (time.Duration, error) {
	start := time.Now()
	names := make([]string, 0, len(c.conns))
	for n := range c.conns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := c.rpc(c.conns[n], &Request{Type: MsgUpdateRates, Rates: rates}); err != nil {
			return time.Since(start), err
		}
	}
	return time.Since(start), nil
}

// RemoveTunnels deletes tunnels (the §4.2 restoration to the original
// state after a quiet TE period).
func (c *Controller) RemoveTunnels(installs []TunnelInstall) error {
	for _, ins := range installs {
		cn, ok := c.conns[ins.Switch]
		if !ok {
			return fmt.Errorf("wan: unknown switch %q", ins.Switch)
		}
		if _, err := c.rpc(cn, &Request{Type: MsgRemoveTunnel, TunnelID: ins.TunnelID}); err != nil {
			return err
		}
	}
	return nil
}
