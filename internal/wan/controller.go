package wan

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"prete/internal/obs"
	"prete/internal/persist"
	"prete/internal/scenario"
	"prete/internal/stats"
)

// ErrControllerHalted marks an RPC failure caused by the controller process
// itself dying (the fault injector's crash-restart mode raises it). Unlike
// a flaky link it is not retried — a dead process sends nothing — and the
// degradation ladder does not fall back: the round is aborted and recovery
// happens through OpenState on the next incarnation.
var ErrControllerHalted = errors.New("wan: controller halted")

// ErrStale marks an RPC refused by an agent's generation fence: this
// controller incarnation has been superseded by a newer one (or lost an
// equal-generation claimant tie-break). It is typed so promotion logic can
// distinguish "I lost the claim and must step down" from ordinary fleet
// trouble.
var ErrStale = errors.New("wan: fenced by a newer controller generation")

// ErrRetryBudget marks an RPC abandoned because the reaction round's retry
// budget (BeginRound) ran out: sleeping through another backoff would
// overrun the TE period, so the ladder must engage now instead of after the
// deadline has already passed.
var ErrRetryBudget = errors.New("wan: retry budget exhausted")

// RetryPolicy bounds the controller's per-RPC retry loop: up to MaxAttempts
// tries per request, waiting a capped exponential backoff between attempts.
// Jitter is the fraction of each backoff randomized away (0 = fixed waits,
// 1 = anywhere in [0, backoff]); the jitter stream is seeded, so sleep
// durations — like everything else in a chaos run — replay from a seed.
type RetryPolicy struct {
	MaxAttempts int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Jitter      float64
}

// DefaultRetryPolicy matches the testbed's loopback latencies: four
// attempts, 5 ms initial backoff doubling to a 200 ms cap, half jittered.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 200 * time.Millisecond, Jitter: 0.5}
}

// solvePeriodFraction is the share of one TE period the controller hands
// the optimizer as its wall-clock ceiling. The remainder covers tunnel
// installation (the Fig 11a-dominant stage), the rate push with its retry
// budget, and slack for the next detection.
const solvePeriodFraction = 0.5

// SolveDeadline derives the TE solve's wall-clock ceiling from the TE
// period: the period is a hard deadline for the whole reaction round, so
// the anytime solve gets solvePeriodFraction of it and the rest is reserved
// for installing whatever plan the solve returns. A nonpositive period
// means no deadline (0) — deterministic runs bound the solve with work
// units instead (core.Optimizer.BudgetUnits).
func SolveDeadline(period time.Duration) time.Duration {
	if period <= 0 {
		return 0
	}
	return time.Duration(solvePeriodFraction * float64(period))
}

// backoff returns the wait before retry number retry (1-based).
func (p RetryPolicy) backoff(retry int, rng *stats.RNG) time.Duration {
	d := p.BaseBackoff
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			d = p.MaxBackoff
			break
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 && rng != nil {
		// Subtract up to Jitter*d: full-jitter-style spreading that never
		// waits longer than the deterministic schedule.
		d -= time.Duration(p.Jitter * rng.Float64() * float64(d))
	}
	return d
}

// Controller is the centralized TE controller: it holds persistent
// connections to every switch agent, installs tunnels serially across the
// fleet, and pushes rate-adaptation updates. RPCs that fail at the
// transport level are retried under Retry with capped exponential backoff;
// a request the fleet ultimately cannot absorb is surfaced as an error and
// the degradation ladder (UpdateRatesWithFallback, Testbed.RunScenario)
// falls back to the last good plan instead of wedging.
type Controller struct {
	conns map[string]Conn // by switch name
	// Timeout bounds one RPC attempt (not the whole retry loop).
	Timeout time.Duration
	// Retry is the per-RPC retry/backoff policy.
	Retry RetryPolicy
	// Metrics, when non-nil, receives per-RPC counters (wan.rpc.count,
	// wan.rpc.errors, wan.rpc.retries, wan.rpc.giveups, wan.rpc.<type>),
	// the wan.rpc.latency and wan.rpc.backoff timers, and the wan.fallback.*
	// series. The instrumentation is write-only; protocol behaviour is
	// unchanged.
	Metrics *obs.Registry
	// Log, when non-nil, records the ordered control-plane event sequence
	// (RPC outcomes, retries, fallbacks) without wall-clock values, so
	// seeded chaos runs can be diffed for bit-identical replay.
	Log *EventLog

	// StateCompactEvery overrides the journal compaction cadence used by
	// OpenState (0 = persist's default).
	StateCompactEvery int

	// LeaderID, when non-empty, names this controller incarnation in every
	// fenced RPC (Request.Leader). Cross-site promotion sets it so agents can
	// tie-break two claimants that fenced to the same generation; set it
	// before the first RPC.
	LeaderID string

	rng *stats.RNG // backoff jitter stream

	mu        sync.Mutex
	deadline  time.Time          // current round's retry-budget deadline (zero = none)
	lastRates map[string]float64 // last table pushed fleet-wide without error
	store     *persist.Store     // nil unless OpenState attached one
	gen       uint64             // fence value stamped into RPCs (0 = unfenced)
	epoch     uint64             // completed (journaled or recovered) epochs
	peerSeq   map[string]uint64  // per-agent RPC sequence numbers
	installed map[string]TunnelInstall
	lastProbs []float64 // probability vector of the last journaled epoch
	// lastFP is the scenario-set fingerprint of the last journaled (or
	// recovered) epoch; 0 when none was recorded.
	lastFP scenario.Fingerprint
}

// NewController dials the given agents (name -> address) over TCP.
func NewController(agents map[string]string) (*Controller, error) {
	return NewControllerTransport(TCPTransport{}, agents)
}

// NewControllerTransport dials the agents through tr (the fault-injection
// tests and the -faults testbed flag pass a fault.Transport here). Agents
// are dialed in sorted name order so any per-dial side effects replay
// deterministically.
func NewControllerTransport(tr Transport, agents map[string]string) (*Controller, error) {
	c := &Controller{
		conns:   make(map[string]Conn, len(agents)),
		Timeout: 10 * time.Second,
		Retry:   DefaultRetryPolicy(),
		rng:     stats.NewRNG(0x77a11c0de),
	}
	for _, name := range sortedNames(agents) {
		cn, err := tr.Dial(name, agents[name])
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns[name] = cn
	}
	return c, nil
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SeedBackoffJitter reseeds the jitter stream (part of a chaos experiment's
// reproducible identity; the default seed is fixed, so this is optional).
func (c *Controller) SeedBackoffJitter(seed uint64) { c.rng = stats.NewRNG(seed) }

// BeginRound bounds the cumulative retry+backoff time of the reaction round
// starting now: once budget has elapsed, in-flight RPCs stop sleeping
// through further backoffs and fail with ErrRetryBudget so the degradation
// ladder engages before the TE period is already blown. A nonpositive
// budget clears the bound (the default — per-RPC MaxAttempts alone, which
// keeps deterministic replay runs byte-identical). The bound is checked
// before each backoff sleep, so a single RPC attempt can still run to its
// own Timeout.
func (c *Controller) BeginRound(budget time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if budget <= 0 {
		c.deadline = time.Time{}
		return
	}
	c.deadline = time.Now().Add(budget)
}

// roundDeadline returns the current round's retry-budget deadline.
func (c *Controller) roundDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deadline
}

// Close tears down all connections and releases the state store (and with
// it the state-directory lock), if one is attached. The store is never
// flushed on Close — every journaled epoch is already durable — so closing
// is equivalent to a crash as far as the next incarnation's recovery is
// concerned.
func (c *Controller) Close() error {
	var first error
	for _, cn := range c.conns {
		if err := cn.Close(); err != nil && first == nil {
			first = err
		}
	}
	c.mu.Lock()
	st := c.store
	c.store = nil
	c.mu.Unlock()
	if st != nil {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ReleaseState detaches and closes the state store without touching the
// controller's connections or in-memory fence state — the model of a
// leader whose storage lease was revoked out from under it (or whose
// process was killed, with the flock dying with it) while the process
// itself keeps running. The released controller keeps stamping its old
// generation, so once a standby claims the directory and bumps the
// generation, every surviving RPC from this zombie is fenced by the
// agents as Stale. Journaling becomes a no-op. Safe with no store
// attached; not undoable — attach state to a fresh controller instead.
func (c *Controller) ReleaseState() error {
	c.mu.Lock()
	st := c.store
	c.store = nil
	c.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Close()
}

// stamp assigns the fence generation and the next per-peer sequence number
// for one logical RPC to name. Unfenced controllers (no state store) stamp
// nothing, keeping the wire encoding identical to the legacy protocol.
func (c *Controller) stamp(name string) (gen, seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == 0 {
		return 0, 0
	}
	if c.peerSeq == nil {
		c.peerSeq = make(map[string]uint64)
	}
	c.peerSeq[name]++
	return c.gen, c.peerSeq[name]
}

// rpc wraps a connection round trip with the controller's retry loop and
// RPC metrics. Transport-level failures are retried up to
// Retry.MaxAttempts with capped exponential backoff; application-level
// rejections (the switch parsed and refused the request) return
// immediately, since retrying identical content cannot succeed.
func (c *Controller) rpc(name string, cn Conn, req *Request) (*Response, error) {
	pol := c.Retry
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	// One sequence number per logical RPC: retried attempts re-send the same
	// (gen, seq), so duplicate deliveries are recognizable as one request.
	req.Gen, req.Seq = c.stamp(name)
	if req.Gen > 0 {
		req.Leader = c.LeaderID
	}
	for attempt := 1; ; attempt++ {
		t := c.Metrics.Timer("wan.rpc.latency")
		start := t.Start()
		resp, err := cn.RoundTrip(req, c.Timeout)
		t.Stop(start)
		c.Metrics.Counter("wan.rpc.count").Inc()
		c.Metrics.Counter("wan.rpc." + string(req.Type)).Inc()
		if err == nil {
			c.Log.Addf("rpc %s %s ok", name, req.Type)
			return resp, nil
		}
		c.Metrics.Counter("wan.rpc.errors").Inc()
		if errors.Is(err, ErrControllerHalted) {
			// The process "died" mid-request: no retries, no fallback — the
			// round is over and the next incarnation recovers from disk.
			c.Metrics.Counter("wan.rpc.halted").Inc()
			c.Log.Addf("rpc %s %s halted", name, req.Type)
			return nil, fmt.Errorf("wan: %s %s: %w", name, req.Type, ErrControllerHalted)
		}
		if resp != nil {
			if resp.Stale {
				// Fenced by the agent: this incarnation is superseded.
				c.Metrics.Counter("wan.recovery.fence_rejections").Inc()
				c.Log.Addf("rpc %s %s fenced", name, req.Type)
				return resp, fmt.Errorf("wan: %s %s fenced to gen %d: %w", name, req.Type, resp.Gen, ErrStale)
			}
			c.Log.Addf("rpc %s %s rejected", name, req.Type)
			return resp, err
		}
		if attempt >= pol.MaxAttempts {
			c.Metrics.Counter("wan.rpc.giveups").Inc()
			c.Log.Addf("rpc %s %s giveup attempt=%d", name, req.Type, attempt)
			return nil, fmt.Errorf("wan: %s %s failed after %d attempts: %w", name, req.Type, attempt, err)
		}
		c.Metrics.Counter("wan.rpc.retries").Inc()
		c.Log.Addf("rpc %s %s retry attempt=%d", name, req.Type, attempt)
		// The jitter draw happens unconditionally so the seeded stream
		// advances identically whether or not a budget is set.
		wait := pol.backoff(attempt, c.rng)
		if dl := c.roundDeadline(); !dl.IsZero() && time.Now().Add(wait).After(dl) {
			c.Metrics.Counter("wan.rpc.budget_giveups").Inc()
			c.Log.Addf("rpc %s %s budget giveup attempt=%d", name, req.Type, attempt)
			return nil, fmt.Errorf("wan: %s %s after %d attempts: %w", name, req.Type, attempt, ErrRetryBudget)
		}
		bt := c.Metrics.Timer("wan.rpc.backoff")
		bstart := bt.Start()
		time.Sleep(wait)
		bt.Stop(bstart)
	}
}

// Ping round-trips every agent (connectivity check) in name order.
func (c *Controller) Ping() error {
	names := make([]string, 0, len(c.conns))
	for n := range c.conns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := c.rpc(name, c.conns[name], &Request{Type: MsgPing}); err != nil {
			return fmt.Errorf("wan: ping %s: %w", name, err)
		}
	}
	return nil
}

// TunnelInstall describes one tunnel to program on one switch.
type TunnelInstall struct {
	Switch   string
	TunnelID int
	Path     []int
}

// InstallTunnels programs the given tunnels one at a time — the serialized
// production behaviour of §5 — and returns the total wall time (Fig 11b's
// y-axis). Tunnel installation is idempotent on the agent (re-programming
// an ID overwrites it), so retried deliveries are harmless.
func (c *Controller) InstallTunnels(installs []TunnelInstall) (time.Duration, error) {
	start := time.Now()
	for _, ins := range installs {
		cn, ok := c.conns[ins.Switch]
		if !ok {
			return time.Since(start), fmt.Errorf("wan: unknown switch %q", ins.Switch)
		}
		if _, err := c.rpc(ins.Switch, cn, &Request{
			Type: MsgInstallTunnel, TunnelID: ins.TunnelID, Path: ins.Path,
		}); err != nil {
			return time.Since(start), err
		}
		c.trackInstall(ins)
	}
	return time.Since(start), nil
}

// trackInstall records a successfully installed tunnel for journaling.
func (c *Controller) trackInstall(ins TunnelInstall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.installed == nil {
		c.installed = make(map[string]TunnelInstall)
	}
	ins.Path = append([]int(nil), ins.Path...)
	c.installed[installKey(ins.Switch, ins.TunnelID)] = ins
}

func (c *Controller) untrackInstall(ins TunnelInstall) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.installed, installKey(ins.Switch, ins.TunnelID))
}

// UpdateRates pushes a rate-adaptation table to every switch ("only
// requires updating match-action entries at few switches", §2.1) and
// returns the wall time. On full success the table is remembered as the
// fleet's last good plan (LastGoodRates).
func (c *Controller) UpdateRates(rates map[string]float64) (time.Duration, error) {
	start := time.Now()
	names := make([]string, 0, len(c.conns))
	for n := range c.conns {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := c.rpc(n, c.conns[n], &Request{Type: MsgUpdateRates, Rates: rates}); err != nil {
			return time.Since(start), err
		}
	}
	c.setLastGoodRates(rates)
	return time.Since(start), nil
}

// UpdateRatesWithFallback pushes a rate table and, when the round cannot
// complete even after per-RPC retries, degrades gracefully instead of
// wedging: the failure is recorded (wan.fallback.rounds), and the last good
// table — the previous installed plan — is best-effort re-asserted so
// agents that accepted the partial update converge back to a consistent
// fleet-wide state. Agents are never left rate-less: a failed update leaves
// each agent's previously installed table in place. The returned flag
// reports whether the round fell back; err carries the original failure for
// diagnostics (a fallen-back round is not fatal to the §5 pipeline).
func (c *Controller) UpdateRatesWithFallback(rates map[string]float64) (time.Duration, bool, error) {
	d, err := c.UpdateRates(rates)
	if err == nil {
		return d, false, nil
	}
	if errors.Is(err, ErrControllerHalted) {
		// A dead controller cannot re-assert anything: surface the halt so
		// the caller aborts the round (recovery is the next incarnation's
		// OpenState, not a fallback push).
		return d, false, err
	}
	c.Metrics.Counter("wan.fallback.rounds").Inc()
	c.Log.Addf("fallback rates")
	if last := c.LastGoodRates(); last != nil {
		t := c.Metrics.Timer("wan.fallback.restore")
		start := t.Start()
		if _, rerr := c.UpdateRates(last); rerr != nil {
			// Even the restore failed; agents keep whatever table they
			// have (old or new), which still routes traffic.
			c.Metrics.Counter("wan.fallback.restore_errors").Inc()
			c.Log.Addf("fallback restore failed")
		} else {
			c.Metrics.Counter("wan.fallback.restores").Inc()
			c.Log.Addf("fallback restored last good")
		}
		t.Stop(start)
	}
	return d, true, err
}

// LastGoodRates returns a copy of the most recent rate table that was
// pushed to every agent without error, or nil if none has succeeded yet.
func (c *Controller) LastGoodRates() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lastRates == nil {
		return nil
	}
	out := make(map[string]float64, len(c.lastRates))
	for k, v := range c.lastRates {
		out[k] = v
	}
	return out
}

func (c *Controller) setLastGoodRates(rates map[string]float64) {
	cp := make(map[string]float64, len(rates))
	for k, v := range rates {
		cp[k] = v
	}
	c.mu.Lock()
	c.lastRates = cp
	c.mu.Unlock()
}

// RemoveTunnels deletes tunnels (the §4.2 restoration to the original
// state after a quiet TE period).
func (c *Controller) RemoveTunnels(installs []TunnelInstall) error {
	for _, ins := range installs {
		cn, ok := c.conns[ins.Switch]
		if !ok {
			return fmt.Errorf("wan: unknown switch %q", ins.Switch)
		}
		if _, err := c.rpc(ins.Switch, cn, &Request{Type: MsgRemoveTunnel, TunnelID: ins.TunnelID}); err != nil {
			return err
		}
		c.untrackInstall(ins)
	}
	return nil
}
