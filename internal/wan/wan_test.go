package wan

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"prete/internal/obs"
	"prete/internal/optical"
)

func fastSwitch() SwitchConfig {
	return SwitchConfig{
		InstallLatency: 2 * time.Millisecond,
		RateLatency:    200 * time.Microsecond,
		MaxTunnels:     100,
	}
}

// checkGoroutineLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if goroutines are still alive once every other
// cleanup (agent and controller shutdown) has run. Register it FIRST in a
// test: t.Cleanup is LIFO, so the check runs last. Shutdown is asynchronous
// (accept loops observe the closed listener on their next wakeup), so the
// check polls briefly before declaring a leak.
func checkGoroutineLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var now int
		for {
			now = runtime.NumGoroutine()
			if now <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if now > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("goroutine leak: %d before, %d after cleanup\n%s", before, now, buf[:n])
		}
	})
}

// newTestAgent starts a switch agent whose shutdown is guaranteed by
// t.Cleanup even when the test fails mid-setup.
func newTestAgent(t *testing.T, name string, cfg SwitchConfig) *SwitchAgent {
	t.Helper()
	a, err := NewSwitchAgent(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := a.Close(); err != nil && !strings.Contains(err.Error(), "use of closed") {
			t.Errorf("agent %s close: %v", name, err)
		}
	})
	return a
}

// newTestController dials the agents with t.Cleanup-based teardown.
func newTestController(t *testing.T, agents map[string]string) *Controller {
	t.Helper()
	ctl, err := NewController(agents)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ctl.Close() })
	return ctl
}

func TestAgentPingAndClose(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	if err := ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallAndRemoveTunnels(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	installs := []TunnelInstall{
		{Switch: "s1", TunnelID: 1, Path: []int{0, 1}},
		{Switch: "s1", TunnelID: 2, Path: []int{2}},
	}
	if _, err := ctl.InstallTunnels(installs); err != nil {
		t.Fatal(err)
	}
	if got := a.NumTunnels(); got != 2 {
		t.Fatalf("tunnel table = %d, want 2", got)
	}
	if err := ctl.RemoveTunnels(installs[:1]); err != nil {
		t.Fatal(err)
	}
	if got := a.NumTunnels(); got != 1 {
		t.Fatalf("tunnel table = %d after removal, want 1", got)
	}
}

func TestInstallUnknownSwitch(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	if _, err := ctl.InstallTunnels([]TunnelInstall{{Switch: "nope", TunnelID: 1}}); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestTunnelTableLimit(t *testing.T) {
	checkGoroutineLeaks(t)
	cfg := fastSwitch()
	cfg.MaxTunnels = 2
	a := newTestAgent(t, "s1", cfg)
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	installs := []TunnelInstall{
		{Switch: "s1", TunnelID: 1}, {Switch: "s1", TunnelID: 2}, {Switch: "s1", TunnelID: 3},
	}
	if _, err := ctl.InstallTunnels(installs); err == nil {
		t.Fatal("exceeding the tunnel table should fail")
	}
	if got := a.NumTunnels(); got != 2 {
		t.Fatalf("table = %d, want 2", got)
	}
}

func TestUpdateRates(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	if _, err := ctl.UpdateRates(map[string]float64{"t1": 5.5, "t2": 2.25}); err != nil {
		t.Fatal(err)
	}
	rates := a.Rates()
	if rates["t1"] != 5.5 || rates["t2"] != 2.25 {
		t.Fatalf("rates = %v", rates)
	}
	// Last-good bookkeeping: the pushed table is remembered as a copy.
	lg := ctl.LastGoodRates()
	if lg["t1"] != 5.5 || lg["t2"] != 2.25 {
		t.Fatalf("last good rates = %v", lg)
	}
	lg["t1"] = 0
	if ctl.LastGoodRates()["t1"] != 5.5 {
		t.Fatal("LastGoodRates returned shared state")
	}
}

// TestRetryAfterAgentRestart exercises the re-dialing transport and the
// retry loop end to end over real TCP: the agent goes away mid-session and
// a replacement listening elsewhere cannot exist at the same address, so we
// restart on the same port is not guaranteed — instead the test kills the
// agent, observes the give-up path, and checks the controller stays usable
// against a healthy peer.
func TestRetryAfterAgentRestart(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	b := newTestAgent(t, "s2", fastSwitch())
	reg := obs.NewRegistry()
	ctl := newTestController(t, map[string]string{"s1": a.Addr(), "s2": b.Addr()})
	ctl.Metrics = reg
	ctl.Retry = RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	if err := ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := ctl.InstallTunnels([]TunnelInstall{{Switch: "s1", TunnelID: 1, Path: []int{0}}}); err == nil {
		t.Fatal("install against a dead agent should fail after retries")
	}
	if reg.Counter("wan.rpc.retries").Value() == 0 {
		t.Error("dead agent produced no retries")
	}
	if reg.Counter("wan.rpc.giveups").Value() == 0 {
		t.Error("dead agent produced no give-up")
	}
	// The controller must remain fully usable toward the healthy agent.
	if _, err := ctl.UpdateRates(map[string]float64{"t1": 1}); err == nil {
		t.Fatal("fleet-wide update should fail while s1 is down")
	}
	if _, err := ctl.InstallTunnels([]TunnelInstall{{Switch: "s2", TunnelID: 2, Path: []int{0}}}); err != nil {
		t.Fatalf("healthy agent unusable after s1 died: %v", err)
	}
}

// TestInstallScalingLinear verifies Fig 11b's shape: serialized installs
// make wall time roughly linear in tunnel count.
func TestInstallScalingLinear(t *testing.T) {
	res, err := MeasureInstallScaling(fastSwitch(), []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	d1, d4, d8 := res[1], res[4], res[8]
	if d4 < 2*d1 {
		t.Errorf("4 tunnels (%v) should take well over 2x one tunnel (%v)", d4, d1)
	}
	if d8 < d4 {
		t.Errorf("8 tunnels (%v) faster than 4 (%v)", d8, d4)
	}
	// linearity: d8/d4 within a factor band of 2
	ratio := float64(d8) / float64(d4)
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("d8/d4 = %v, expected roughly 2 (linear scaling)", ratio)
	}
}

// TestRunScenario runs the full §5 pipeline on loopback and checks the
// Fig 11a structure: every stage measured, tunnel update dominant, and the
// switch state actually updated.
func TestRunScenario(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, err := NewTestbed(fastSwitch(), func(f optical.Features) float64 {
		if f.DegreeDB <= 0 {
			t.Errorf("predictor got empty features: %+v", f)
		}
		return 0.8
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	reg := obs.NewRegistry()
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = NewEventLog()
	timing, err := tb.RunScenario(7)
	if err != nil {
		t.Fatal(err)
	}
	// Every reaction goes through the controller: the RPC series must be
	// populated, with zero errors on loopback.
	if reg.Counter("wan.rpc.count").Value() == 0 {
		t.Error("no controller RPCs counted")
	}
	if reg.Counter("wan.rpc.errors").Value() != 0 {
		t.Errorf("unexpected RPC errors: %d", reg.Counter("wan.rpc.errors").Value())
	}
	if reg.Counter("wan.rpc.install_tunnel").Value() == 0 {
		t.Error("no install_tunnel RPCs counted")
	}
	if reg.Timer("wan.rpc.latency").Count() != reg.Counter("wan.rpc.count").Value() {
		t.Error("RPC latency samples do not match RPC count")
	}
	if timing.TunnelUpdate <= 0 || timing.TECompute <= 0 || timing.ScenarioRegen <= 0 {
		t.Fatalf("missing stage timings: %+v", timing)
	}
	if timing.Total() <= 0 {
		t.Fatal("zero total")
	}
	if timing.Degraded {
		t.Fatal("loopback run with no faults reported degradation")
	}
	// The pipeline stages must appear in the event log in order.
	var stages []string
	for _, e := range tb.Ctl.Log.Events() {
		if strings.HasPrefix(e, "stage ") {
			stages = append(stages, strings.TrimPrefix(e, "stage "))
		}
	}
	want := []string{"inference", "tunnel-update", "scenario-regen", "te-compute", "rate-install"}
	if len(stages) != len(want) {
		t.Fatalf("stage events = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Fatalf("stage order = %v, want %v", stages, want)
		}
	}
	// the new tunnel must be on the switch
	installed := 0
	for _, a := range tb.Agents {
		installed += a.NumTunnels()
	}
	if installed == 0 {
		t.Fatal("no tunnels installed on any agent")
	}
	// rate adaptation pushed
	if len(tb.Agents[0].Rates()) == 0 {
		t.Fatal("no rates installed")
	}
}

func TestPipelineTotal(t *testing.T) {
	p := PipelineTiming{
		Detection: 1, Inference: 2, TunnelUpdate: 3,
		ScenarioRegen: 4, TECompute: 5, RateInstall: 6,
	}
	if p.Total() != 21 {
		t.Fatalf("total = %v", p.Total())
	}
}

func TestBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 40 * time.Millisecond}
	// Without jitter the schedule is the capped doubling sequence.
	for i, want := range []time.Duration{10, 20, 40, 40} {
		if got := p.backoff(i+1, nil); got != want*time.Millisecond {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}
}

// TestRunScenarioStream pins the streaming reaction path to the batch one:
// the ingest pipeline must surface the same degradation, the reaction
// timing must be fully populated, and — with default ring capacities — the
// VOA script must never trigger backpressure, at any shard count or
// arrival rate.
func TestRunScenarioStream(t *testing.T) {
	checkGoroutineLeaks(t)
	for _, tc := range []struct{ shards, rate int }{{0, 0}, {1, 1}, {3, 7}, {8, 50}} {
		tb, err := NewTestbed(fastSwitch(), func(f optical.Features) float64 { return 0.8 })
		if err != nil {
			t.Fatal(err)
		}
		tb.Ctl.Metrics = obs.NewRegistry()
		timing, st, err := tb.RunScenarioStream(7, tc.shards, tc.rate)
		if err != nil {
			tb.Close()
			t.Fatalf("shards=%d rate=%d: %v", tc.shards, tc.rate, err)
		}
		if timing.TunnelUpdate <= 0 || timing.TECompute <= 0 || timing.ScenarioRegen <= 0 {
			t.Errorf("shards=%d rate=%d: missing stage timings: %+v", tc.shards, tc.rate, timing)
		}
		if st.Dropped != 0 || st.Merged != 0 {
			t.Errorf("shards=%d rate=%d: VOA script triggered backpressure: %+v", tc.shards, tc.rate, st)
		}
		if st.Ingested == 0 || st.Ingested != st.Emitted+st.Queued {
			t.Errorf("shards=%d rate=%d: accounting off: %+v", tc.shards, tc.rate, st)
		}
		if v := tb.Ctl.Metrics.Counter("ingest.samples.ingested").Value(); v != st.Ingested {
			t.Errorf("shards=%d rate=%d: registry ingested = %d, stats = %d", tc.shards, tc.rate, v, st.Ingested)
		}
		tb.Close()
	}
}
