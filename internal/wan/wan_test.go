package wan

import (
	"testing"
	"time"

	"prete/internal/obs"
	"prete/internal/optical"
)

func fastSwitch() SwitchConfig {
	return SwitchConfig{
		InstallLatency: 2 * time.Millisecond,
		RateLatency:    200 * time.Microsecond,
		MaxTunnels:     100,
	}
}

func TestAgentPingAndClose(t *testing.T) {
	a, err := NewSwitchAgent("s1", fastSwitch())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	ctl.Close()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallAndRemoveTunnels(t *testing.T) {
	a, err := NewSwitchAgent("s1", fastSwitch())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctl, err := NewController(map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	installs := []TunnelInstall{
		{Switch: "s1", TunnelID: 1, Path: []int{0, 1}},
		{Switch: "s1", TunnelID: 2, Path: []int{2}},
	}
	if _, err := ctl.InstallTunnels(installs); err != nil {
		t.Fatal(err)
	}
	if got := a.NumTunnels(); got != 2 {
		t.Fatalf("tunnel table = %d, want 2", got)
	}
	if err := ctl.RemoveTunnels(installs[:1]); err != nil {
		t.Fatal(err)
	}
	if got := a.NumTunnels(); got != 1 {
		t.Fatalf("tunnel table = %d after removal, want 1", got)
	}
}

func TestInstallUnknownSwitch(t *testing.T) {
	a, err := NewSwitchAgent("s1", fastSwitch())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctl, err := NewController(map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.InstallTunnels([]TunnelInstall{{Switch: "nope", TunnelID: 1}}); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestTunnelTableLimit(t *testing.T) {
	cfg := fastSwitch()
	cfg.MaxTunnels = 2
	a, err := NewSwitchAgent("s1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctl, err := NewController(map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	installs := []TunnelInstall{
		{Switch: "s1", TunnelID: 1}, {Switch: "s1", TunnelID: 2}, {Switch: "s1", TunnelID: 3},
	}
	if _, err := ctl.InstallTunnels(installs); err == nil {
		t.Fatal("exceeding the tunnel table should fail")
	}
	if got := a.NumTunnels(); got != 2 {
		t.Fatalf("table = %d, want 2", got)
	}
}

func TestUpdateRates(t *testing.T) {
	a, err := NewSwitchAgent("s1", fastSwitch())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ctl, err := NewController(map[string]string{"s1": a.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()
	if _, err := ctl.UpdateRates(map[string]float64{"t1": 5.5, "t2": 2.25}); err != nil {
		t.Fatal(err)
	}
	rates := a.Rates()
	if rates["t1"] != 5.5 || rates["t2"] != 2.25 {
		t.Fatalf("rates = %v", rates)
	}
}

// TestInstallScalingLinear verifies Fig 11b's shape: serialized installs
// make wall time roughly linear in tunnel count.
func TestInstallScalingLinear(t *testing.T) {
	res, err := MeasureInstallScaling(fastSwitch(), []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	d1, d4, d8 := res[1], res[4], res[8]
	if d4 < 2*d1 {
		t.Errorf("4 tunnels (%v) should take well over 2x one tunnel (%v)", d4, d1)
	}
	if d8 < d4 {
		t.Errorf("8 tunnels (%v) faster than 4 (%v)", d8, d4)
	}
	// linearity: d8/d4 within a factor band of 2
	ratio := float64(d8) / float64(d4)
	if ratio < 1.3 || ratio > 3.5 {
		t.Errorf("d8/d4 = %v, expected roughly 2 (linear scaling)", ratio)
	}
}

// TestRunScenario runs the full §5 pipeline on loopback and checks the
// Fig 11a structure: every stage measured, tunnel update dominant, and the
// switch state actually updated.
func TestRunScenario(t *testing.T) {
	tb, err := NewTestbed(fastSwitch(), func(f optical.Features) float64 {
		if f.DegreeDB <= 0 {
			t.Errorf("predictor got empty features: %+v", f)
		}
		return 0.8
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	reg := obs.NewRegistry()
	tb.Ctl.Metrics = reg
	timing, err := tb.RunScenario(7)
	if err != nil {
		t.Fatal(err)
	}
	// Every reaction goes through the controller: the RPC series must be
	// populated, with zero errors on loopback.
	if reg.Counter("wan.rpc.count").Value() == 0 {
		t.Error("no controller RPCs counted")
	}
	if reg.Counter("wan.rpc.errors").Value() != 0 {
		t.Errorf("unexpected RPC errors: %d", reg.Counter("wan.rpc.errors").Value())
	}
	if reg.Counter("wan.rpc.install_tunnel").Value() == 0 {
		t.Error("no install_tunnel RPCs counted")
	}
	if reg.Timer("wan.rpc.latency").Count() != reg.Counter("wan.rpc.count").Value() {
		t.Error("RPC latency samples do not match RPC count")
	}
	if timing.TunnelUpdate <= 0 || timing.TECompute <= 0 || timing.ScenarioRegen <= 0 {
		t.Fatalf("missing stage timings: %+v", timing)
	}
	if timing.Total() <= 0 {
		t.Fatal("zero total")
	}
	// the new tunnel must be on the switch
	installed := 0
	for _, a := range tb.Agents {
		installed += a.NumTunnels()
	}
	if installed == 0 {
		t.Fatal("no tunnels installed on any agent")
	}
	// rate adaptation pushed
	if len(tb.Agents[0].Rates()) == 0 {
		t.Fatal("no rates installed")
	}
}

func TestPipelineTotal(t *testing.T) {
	p := PipelineTiming{
		Detection: 1, Inference: 2, TunnelUpdate: 3,
		ScenarioRegen: 4, TECompute: 5, RateInstall: 6,
	}
	if p.Total() != 21 {
		t.Fatalf("total = %v", p.Total())
	}
}
