package wan

import "sync"

// Clock is the time source leases run on. It is a seam, not a convenience:
// cross-site failover decisions must replay bit-identically from a seed, so
// everything the lease compares is expressed in abstract ticks and the
// production wall clock is just one implementation. Now never goes
// backwards.
type Clock interface {
	Now() uint64
}

// LogicalClock is the deterministic Clock: a counter advanced explicitly by
// the harness (SiteSet advances it once per Tick). Two runs that perform
// the same tick sequence observe the same times, which is what keeps lease
// expiries — and therefore elections and promotions — byte-identical in
// the failover matrix. Safe for concurrent use.
type LogicalClock struct {
	mu sync.Mutex
	t  uint64
}

// NewLogicalClock returns a clock at time 0.
func NewLogicalClock() *LogicalClock { return &LogicalClock{} }

// Now returns the current logical time.
func (c *LogicalClock) Now() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward n ticks and returns the new time.
func (c *LogicalClock) Advance(n uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t += n
	return c.t
}

// Lease is a time-bounded leadership grant as seen from one standby: the
// leader renews it on every successful heartbeat, and the standby may claim
// leadership only once it has expired. This replaces counting consecutive
// heartbeat misses — a miss streak says nothing about *time*, and the
// recovery bound this repo holds itself to (promotion inside one TE period)
// is a time bound. The lease also remembers the highest leader generation
// it ever observed, which is the promotion fence floor: a claimant opens
// its own directory with generation > Gen so the zombie's RPCs lose at
// every agent.
//
// A fresh lease starts with one full duration of grace, so a standby that
// has never reached its leader does not instantly promote at boot. Safe
// for concurrent use.
type Lease struct {
	clock    Clock
	duration uint64

	mu     sync.Mutex
	expiry uint64
	gen    uint64
	renews int64
}

// NewLease returns a lease on clock that expires duration ticks after its
// last renewal, initially granted one full duration from now.
func NewLease(clock Clock, duration uint64) *Lease {
	return &Lease{clock: clock, duration: duration, expiry: clock.Now() + duration}
}

// Renew extends the lease to now + duration and records the leader
// generation observed on the renewing heartbeat, returning the new expiry.
func (l *Lease) Renew(gen uint64) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.expiry = l.clock.Now() + l.duration
	if gen > l.gen {
		l.gen = gen
	}
	l.renews++
	return l.expiry
}

// Expired reports whether the lease has lapsed: the standby has not heard a
// renewal for a full duration, and claiming leadership is now permitted.
func (l *Lease) Expired() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.clock.Now() >= l.expiry
}

// Remaining returns expiry minus now (negative once expired).
func (l *Lease) Remaining() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(l.expiry) - int64(l.clock.Now())
}

// Expiry returns the current expiry time.
func (l *Lease) Expiry() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.expiry
}

// Gen returns the highest leader generation observed on any renewal (0
// before the first renewal that carried one).
func (l *Lease) Gen() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// Renews returns the number of successful renewals.
func (l *Lease) Renews() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.renews
}
