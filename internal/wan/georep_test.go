package wan

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"prete/internal/obs"
)

// newSiteHarness stands up a stateful leader testbed, its lease endpoint,
// and a cross-site set of n standby sites, each with its own replicated
// state directory under a shared root. LeaseTicks is 3 with a fast 100 ms
// heartbeat timeout so failovers resolve in a handful of ticks.
func newSiteHarness(t *testing.T, n int) (tb *Testbed, lease *LeaseServer, ss *SiteSet) {
	t.Helper()
	dir := t.TempDir()
	tb = newStateTestbed(t)
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	lease, err := NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lease.Close() })
	ss, err = NewSiteSet(dir, t.TempDir(), lease.Addr(), agentAddrs(tb), SiteOptions{
		Sites:            n,
		LeaseTicks:       3,
		HeartbeatTimeout: 100 * time.Millisecond,
		Metrics:          obs.NewRegistry(),
		Log:              NewEventLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	return tb, lease, ss
}

// TestSiteSetShipsAndMirrors: a healthy leader's journal records ship to
// every site on each tick, every site's mirror tracks the live epoch, the
// shipping accounting balances exactly, and no lease ever runs low.
func TestSiteSetShipsAndMirrors(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, ss := newSiteHarness(t, 2)

	// Cold tick before any epoch: no promotion, empty mirrors.
	if p, err := ss.Tick(); p != nil || err != nil {
		t.Fatalf("cold tick: promotion=%v err=%v", p, err)
	}
	for _, st := range ss.Status() {
		if st.Epoch != 0 || st.Promoted {
			t.Fatalf("cold site status = %+v", st)
		}
	}

	for epoch := uint64(1); epoch <= 2; epoch++ {
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatal(err)
		}
		if p, err := ss.Tick(); p != nil || err != nil {
			t.Fatalf("tick after epoch %d: promotion=%v err=%v", epoch, p, err)
		}
		for _, st := range ss.Status() {
			if st.Epoch != epoch {
				t.Errorf("site %d mirror epoch = %d after epoch %d", st.ID, st.Epoch, epoch)
			}
			if st.Applied < epoch {
				t.Errorf("site %d applied prefix = %d after epoch %d", st.ID, st.Applied, epoch)
			}
			if st.Resyncs != 0 || st.FencedClaims != 0 || st.Promoted {
				t.Errorf("site %d unexpected state: %+v", st.ID, st)
			}
			if st.LeaseRemaining <= 0 {
				t.Errorf("site %d lease low: %+v", st.ID, st)
			}
			if st.LeaseGen != 1 {
				t.Errorf("site %d lease gen = %d, want live leader gen 1", st.ID, st.LeaseGen)
			}
		}
	}

	// Exact shipping accounting: every shipped frame is acked, nothing is in
	// flight, nothing needed a retry or a snapshot on a clean stream.
	rs := ss.ReplStats()
	if rs.Shipped == 0 || rs.Shipped != rs.Acked || rs.Inflight != 0 || rs.Resent != 0 || rs.Resyncs != 0 {
		t.Errorf("clean-stream accounting off: %+v", rs)
	}
	m := ss.opt.Metrics
	if v := m.Counter("wan.georep.ticks").Value(); v != 3 {
		t.Errorf("wan.georep.ticks = %d, want 3", v)
	}
	if v := m.Counter("wan.georep.heartbeats").Value(); v != 6 {
		t.Errorf("wan.georep.heartbeats = %d, want 6", v)
	}
	if v := m.Counter("wan.georep.misses").Value(); v != 0 {
		t.Errorf("wan.georep.misses = %d, want 0", v)
	}
	if v := m.Counter("wan.georep.elections").Value(); v != 0 {
		t.Errorf("wan.georep.elections = %d, want 0", v)
	}
}

// TestSiteServerProtocol pins the replication wire contract between the
// sitePipe shipper and a SiteServer: ack, re-sync, and refusal responses
// map onto the persist.Pipe result exactly, the snapshot flag survives the
// trip, and a non-replication message is refused without killing the
// connection.
func TestSiteServerProtocol(t *testing.T) {
	checkGoroutineLeaks(t)
	type answer struct {
		ack    uint64
		resync bool
		errstr string
	}
	script := []answer{{ack: 5}, {ack: 5, resync: true}, {errstr: "boom"}, {ack: 6}}
	var mu sync.Mutex
	var snapshots []bool
	srv, err := NewSiteServer(func(frame []byte, snapshot bool) (uint64, bool, string) {
		mu.Lock()
		defer mu.Unlock()
		snapshots = append(snapshots, snapshot)
		a := script[0]
		script = script[1:]
		return a.ack, a.resync, a.errstr
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cn, err := TCPTransport{}.Dial("repl/1", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cn.Close() })
	pipe := sitePipe{conn: cn, timeout: time.Second}

	if ack, resync, err := pipe.Ship([]byte("r1"), false); ack != 5 || resync || err != nil {
		t.Fatalf("acked record = (%d, %v, %v), want (5, false, nil)", ack, resync, err)
	}
	if ack, resync, err := pipe.Ship([]byte("r2"), false); ack != 5 || !resync || err != nil {
		t.Fatalf("re-sync answer = (%d, %v, %v), want (5, true, nil)", ack, resync, err)
	}
	if _, _, err := pipe.Ship([]byte("r3"), false); err == nil {
		t.Fatal("refused frame shipped without error")
	}
	if _, _, err := pipe.Ship([]byte("snap"), true); err != nil {
		t.Fatalf("snapshot ship: %v", err)
	}
	mu.Lock()
	wantSnaps := []bool{false, false, false, true}
	if !reflect.DeepEqual(snapshots, wantSnaps) {
		t.Errorf("snapshot flags seen = %v, want %v", snapshots, wantSnaps)
	}
	mu.Unlock()

	// A non-replication message is refused, and the connection survives.
	if resp, _ := cn.RoundTrip(&Request{Type: MsgPing}, time.Second); resp == nil || resp.OK || resp.Err == "" {
		t.Fatalf("site ingress accepted a non-replication message: %+v", resp)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestSitePromotionLeaseGate: claiming leadership while the leader's lease
// is still live fails typed with ErrLeaseValid before any network traffic,
// and an unknown site id is rejected outright.
func TestSitePromotionLeaseGate(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, ss := newSiteHarness(t, 1)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Promote(1); !errors.Is(err, ErrLeaseValid) {
		t.Fatalf("claim under a live lease: err = %v, want ErrLeaseValid", err)
	}
	if ss.Promoted() {
		t.Fatal("refused claim left the set promoted")
	}
	if _, err := ss.Promote(9); err == nil || errors.Is(err, ErrLeaseValid) {
		t.Fatalf("unknown site claim: err = %v, want a not-found error", err)
	}
}

// TestEqualGenNamedTiebreak pins the agent-side arbitration that replaces
// the shared flock across sites: two claimants fenced to the same
// generation tie-break to whichever named leader reached the agent first,
// while unnamed equal-generation senders keep the legacy always-accepted
// behaviour.
func TestEqualGenNamedTiebreak(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	cn, err := TCPTransport{}.Dial("ctl", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cn.Close() })
	ping := func(gen uint64, leader string) *Response {
		t.Helper()
		// A refusal surfaces as both a populated Response and an error; the
		// Response carries the verdict the test cares about.
		resp, err := cn.RoundTrip(&Request{Type: MsgPing, Gen: gen, Leader: leader}, time.Second)
		if resp == nil {
			t.Fatalf("ping gen=%d leader=%q: no response (%v)", gen, leader, err)
		}
		return resp
	}

	if resp := ping(5, "site-1"); !resp.OK || resp.Stale {
		t.Fatalf("first named claimant refused: %+v", resp)
	}
	if got := a.MaxGen(); got != 5 {
		t.Fatalf("agent fence = gen %d, want 5", got)
	}
	// An equal-generation sibling claimant loses the tie-break.
	if resp := ping(5, "site-2"); !resp.Stale || resp.Gen != 5 {
		t.Fatalf("sibling claimant at the same gen accepted: %+v", resp)
	}
	// The winner keeps working at the same generation.
	if resp := ping(5, "site-1"); !resp.OK || resp.Stale {
		t.Fatalf("winning claimant refused at its own gen: %+v", resp)
	}
	// Unnamed equal-generation traffic is the legacy protocol: accepted.
	if resp := ping(5, ""); !resp.OK || resp.Stale {
		t.Fatalf("legacy unnamed sender refused at the fence gen: %+v", resp)
	}
	// Older generations stay fenced regardless of the name.
	if resp := ping(4, "site-1"); !resp.Stale {
		t.Fatalf("stale generation accepted from the winner: %+v", resp)
	}
	// A higher generation hands the name over; the old winner is now stale.
	if resp := ping(6, "site-2"); !resp.OK || resp.Stale {
		t.Fatalf("higher-gen claimant refused: %+v", resp)
	}
	if resp := ping(6, "site-1"); !resp.Stale {
		t.Fatalf("dethroned claimant accepted at the new gen: %+v", resp)
	}
	if got := a.FenceRejections(); got != 3 {
		t.Errorf("fence rejections = %d, want 3", got)
	}
}

// TestSiteFailoverPromotesWarm is the cross-site end-to-end check: the
// leader's lease endpoint dies, site 1's lease runs out after a full
// duration of misses, and the site promotes from its own replicated
// directory — warm, mirror-matched, fenced one generation above everything
// its lease observed — then re-asserts the last-good plan while the zombie
// predecessor bounces off the fleet-wide fence.
func TestSiteFailoverPromotesWarm(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, lease, ss := newSiteHarness(t, 2)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.Tick(); err != nil {
		t.Fatal(err)
	}
	wantRates := tb.Ctl.LastGoodRates()
	if wantRates == nil {
		t.Fatal("no last-good rates after epoch 1")
	}

	// Leader death: the lease endpoint dies with the process, but the
	// leader's agent connections survive — the zombie case. There is no
	// shared flock to release across sites.
	lease.Close()

	var p *SitePromotion
	ticks := 0
	for p == nil {
		var err error
		if p, err = ss.Tick(); err != nil {
			t.Fatalf("tick %d after lease death: %v", ticks, err)
		}
		if ticks++; ticks > 6 {
			t.Fatal("no promotion within 6 ticks of lease death")
		}
	}
	if p.SiteID != 1 {
		t.Errorf("promoted site = %d, want lowest site 1", p.SiteID)
	}
	if !p.Recovery.Warm || p.Recovery.Epoch != 1 || p.Recovery.Generation != 2 {
		t.Errorf("promotion recovery = %+v, want warm epoch 1 gen 2", p.Recovery)
	}
	if !p.MirrorMatch {
		t.Error("replicated mirror did not match recovered state")
	}
	if !p.Reasserted || p.Degraded {
		t.Errorf("re-assert: reasserted=%v degraded=%v, want clean re-assert", p.Reasserted, p.Degraded)
	}
	if p.Elapsed >= 10*time.Second {
		t.Errorf("promotion took %v, want well under one TE period", p.Elapsed)
	}
	if !ss.Promoted() {
		t.Error("set not marked promoted")
	}
	for _, st := range ss.Status() {
		if st.ID == 1 && !st.Promoted {
			t.Errorf("site 1 status not promoted: %+v", st)
		}
	}

	zombie := tb.AdoptPromoted(p.Ctl)
	t.Cleanup(func() { zombie.Close() })

	// The fleet converged back onto the last-good plan under generation 2.
	for _, a := range tb.Agents {
		if got := a.Rates(); !reflect.DeepEqual(got, wantRates) {
			t.Errorf("agent %s rates after failover = %v, want %v", a.Name, got, wantRates)
		}
		if got := a.MaxGen(); got != 2 {
			t.Errorf("agent %s fence = gen %d, want 2", a.Name, got)
		}
	}
	// The zombie still stamps generation 1; its writes bounce off the fence.
	if _, err := zombie.UpdateRates(map[string]float64{"t0": 99}); err == nil {
		t.Fatal("zombie leader's post-promotion write accepted")
	}
	fenced := 0
	for _, a := range tb.Agents {
		fenced += a.FenceRejections()
	}
	if fenced == 0 {
		t.Error("no agent recorded a fence rejection")
	}

	// The site set is inert after hand-off; the adopted controller runs the
	// next epoch as the recovered lineage.
	if p2, err := ss.Tick(); p2 != nil || err != nil {
		t.Fatalf("post-promotion tick: promotion=%v err=%v", p2, err)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if got := tb.Ctl.Epoch(); got != 2 {
		t.Errorf("epoch after failover + one round = %d, want 2", got)
	}
	m := ss.opt.Metrics
	if v := m.Counter("wan.georep.elections").Value(); v != 1 {
		t.Errorf("wan.georep.elections = %d, want 1", v)
	}
	if v := m.Counter("wan.failover.promotions").Value(); v != 1 {
		t.Errorf("wan.failover.promotions = %d, want 1", v)
	}
	if v := m.Counter("wan.failover.mirror_match").Value(); v != 1 {
		t.Errorf("wan.failover.mirror_match = %d, want 1", v)
	}
}

// TestRetryBudgetBoundsRound: with a round budget armed via BeginRound, a
// controller facing a dead agent stops retrying once the next backoff
// would overrun the budget, failing typed with ErrRetryBudget — while the
// same fleet state without a budget runs the full retry ladder to a plain
// giveup.
func TestRetryBudgetBoundsRound(t *testing.T) {
	checkGoroutineLeaks(t)
	a := newTestAgent(t, "s1", fastSwitch())
	ctl := newTestController(t, map[string]string{"s1": a.Addr()})
	ctl.Metrics = obs.NewRegistry()
	ctl.Retry = RetryPolicy{MaxAttempts: 8, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Jitter: 0.5}
	if err := ctl.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Budgeted round: the first backoff already overruns 1 ms of remaining
	// budget, so the round gives up typed long before 8 attempts elapse.
	ctl.BeginRound(time.Millisecond)
	start := time.Now()
	err := ctl.Ping()
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("budgeted ping against a dead agent: err = %v, want ErrRetryBudget", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Errorf("budgeted round ran %v — budget did not bound retries", took)
	}
	if v := ctl.Metrics.Counter("wan.rpc.budget_giveups").Value(); v < 1 {
		t.Errorf("wan.rpc.budget_giveups = %d, want >= 1", v)
	}

	// Budget cleared: the same failure runs the full ladder to a plain
	// giveup, not a budget error.
	ctl.BeginRound(0)
	if err := ctl.Ping(); err == nil || errors.Is(err, ErrRetryBudget) {
		t.Fatalf("unbudgeted ping: err = %v, want a plain giveup", err)
	}
}

// TestSetLeaderReachablePausesStream: a partitioned leader stops driving
// the replication stream — sites fall behind — and resuming reachability
// ships the backlog on the next tick without a re-sync.
func TestSetLeaderReachablePausesStream(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, ss := newSiteHarness(t, 1)

	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	ss.SetLeaderReachable(false)
	if p, err := ss.Tick(); p != nil || err != nil {
		t.Fatalf("partitioned tick: promotion=%v err=%v", p, err)
	}
	if rs := ss.ReplStats(); rs.Shipped != 0 {
		t.Fatalf("partitioned leader still shipped: %+v", rs)
	}
	if st := ss.Status()[0]; st.Epoch != 0 {
		t.Fatalf("site mirror advanced across the partition: %+v", st)
	}
	// Heartbeats are governed by the lease endpoint, not the stream: the
	// lease stayed fresh through the partition.
	if st := ss.Status()[0]; st.LeaseRemaining <= 0 {
		t.Fatalf("lease lapsed during a leader-side partition: %+v", st)
	}

	ss.SetLeaderReachable(true)
	if p, err := ss.Tick(); p != nil || err != nil {
		t.Fatalf("healed tick: promotion=%v err=%v", p, err)
	}
	rs := ss.ReplStats()
	if rs.Shipped == 0 || rs.Shipped != rs.Acked || rs.Resyncs != 0 {
		t.Fatalf("backlog did not ship cleanly after heal: %+v", rs)
	}
	if st := ss.Status()[0]; st.Epoch != 1 {
		t.Fatalf("site mirror behind after heal: %+v", st)
	}
	if got := ss.Clock().Now(); got != 2 {
		t.Fatalf("lease clock at %d after two ticks, want 2", got)
	}
}

// TestFencedClaimStepsDownAndRejoins: a rival claimant (a sibling site this
// set cannot see) has already fenced every agent at a higher generation.
// When this set's site claims after lease expiry, the fence probe is
// refused, the claim steps down — controller torn down, directory re-opened
// for standby duty — and ErrClaimFenced surfaces. The site keeps standing
// by: the next election repeats the claim and loses again.
func TestFencedClaimStepsDownAndRejoins(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, lease, ss := newSiteHarness(t, 1)

	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if p, err := ss.Tick(); p != nil || err != nil {
		t.Fatalf("warm tick: promotion=%v err=%v", p, err)
	}

	// The rival fences the whole fleet far above anything this site's
	// lease observed.
	for _, a := range tb.Agents {
		cn, err := TCPTransport{}.Dial("ctl", a.Addr())
		if err != nil {
			t.Fatal(err)
		}
		resp, _ := cn.RoundTrip(&Request{Type: MsgPing, Gen: 7, Leader: "site-9"}, time.Second)
		cn.Close()
		if resp == nil || !resp.OK {
			t.Fatalf("rival fence refused: %+v", resp)
		}
	}

	lease.Close()
	var ferr error
	for i := 0; i < 6 && ferr == nil; i++ {
		_, ferr = ss.Tick()
	}
	if !errors.Is(ferr, ErrClaimFenced) {
		t.Fatalf("claim against a fenced fleet: err = %v, want ErrClaimFenced", ferr)
	}
	if ss.Promoted() {
		t.Fatal("fenced site still marked itself leader")
	}
	st := ss.Status()[0]
	if st.FencedClaims != 1 || st.Promoted {
		t.Fatalf("post-fence status: %+v", st)
	}
	if st.Applied != 1 {
		t.Fatalf("rejoined standby lost its applied prefix: %+v", st)
	}
	m := ss.opt.Metrics
	if v := m.Counter("wan.georep.fenced_claims").Value(); v != 1 {
		t.Errorf("wan.georep.fenced_claims = %d, want 1", v)
	}
	if v := m.Counter("wan.georep.rejoin_errors").Value(); v != 0 {
		t.Errorf("wan.georep.rejoin_errors = %d, want 0", v)
	}
	if v := m.Counter("wan.failover.promotions").Value(); v != 0 {
		t.Errorf("wan.failover.promotions = %d, want 0", v)
	}

	// Standby duty resumed: the directory re-opened, so the next election
	// claims again — and loses to the same fence.
	if _, err := ss.Tick(); !errors.Is(err, ErrClaimFenced) {
		t.Fatalf("second claim: err = %v, want ErrClaimFenced", err)
	}
	if got := ss.Status()[0].FencedClaims; got != 2 {
		t.Fatalf("fenced claims after second loss = %d, want 2", got)
	}
}
