package wan

import (
	"crypto/sha256"
	"errors"
	"os"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prete/internal/obs"
)

// agentAddrs maps a testbed's agent fleet to the name->address form the
// replica types take.
func agentAddrs(tb *Testbed) map[string]string {
	m := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		m[a.Name] = a.Addr()
	}
	return m
}

// newReplicaHarness stands up a stateful leader testbed, its lease
// endpoint, and a replica set of n standbys with fast failure detection
// (2 misses at a 100 ms heartbeat timeout).
func newReplicaHarness(t *testing.T, n int) (tb *Testbed, dir string, lease *LeaseServer, rs *ReplicaSet) {
	t.Helper()
	dir = t.TempDir()
	tb = newStateTestbed(t)
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	lease, err := NewLeaseServer(tb.Ctl.Generation)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lease.Close() })
	rs, err = NewReplicaSet(dir, lease.Addr(), agentAddrs(tb), ReplicaOptions{
		Standbys:         n,
		MissThreshold:    2,
		HeartbeatTimeout: 100 * time.Millisecond,
		Metrics:          obs.NewRegistry(),
		Log:              NewEventLog(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rs.Close() })
	return tb, dir, lease, rs
}

// TestReplicaTailsWarmMirror: standbys tail the live leader's journal on
// every tick and keep a warm EpochState mirror, without a single heartbeat
// miss while the leader lives.
func TestReplicaTailsWarmMirror(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, _, rs := newReplicaHarness(t, 2)

	// Cold tick before any epoch: no promotion, empty mirrors.
	if p, err := rs.Tick(); p != nil || err != nil {
		t.Fatalf("cold tick: promotion=%v err=%v", p, err)
	}
	for _, st := range rs.Status() {
		if st.Epoch != 0 || st.Misses != 0 {
			t.Fatalf("cold standby status = %+v", st)
		}
	}

	for epoch := uint64(1); epoch <= 2; epoch++ {
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatal(err)
		}
		if p, err := rs.Tick(); p != nil || err != nil {
			t.Fatalf("tick after epoch %d: promotion=%v err=%v", epoch, p, err)
		}
		for _, st := range rs.Status() {
			if st.Epoch != epoch {
				t.Errorf("standby %d mirror epoch = %d after epoch %d", st.ID, st.Epoch, epoch)
			}
			if st.Misses != 0 || st.Crashed || st.Promoted {
				t.Errorf("standby %d unexpected state: %+v", st.ID, st)
			}
		}
	}
	m := rs.opt.Metrics
	if v := m.Counter("wan.election.ticks").Value(); v != 3 {
		t.Errorf("wan.election.ticks = %d, want 3", v)
	}
	if v := m.Counter("wan.election.heartbeats").Value(); v != 6 {
		t.Errorf("wan.election.heartbeats = %d, want 6", v)
	}
	if v := m.Counter("wan.election.misses").Value(); v != 0 {
		t.Errorf("wan.election.misses = %d, want 0", v)
	}
	if v := m.Counter("wan.failover.promotions").Value(); v != 0 {
		t.Errorf("wan.failover.promotions = %d, want 0", v)
	}
}

// TestFailoverPromotesAndFencesZombie is the tentpole end-to-end check:
// the leader dies after one epoch, the lowest live standby detects the
// missing lease, claims the state directory under a new generation,
// re-asserts the last-good plan fleet-wide, and the zombie predecessor's
// surviving connections are fenced by every agent.
func TestFailoverPromotesAndFencesZombie(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, lease, rs := newReplicaHarness(t, 2)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Tick(); err != nil {
		t.Fatal(err)
	}
	wantRates := tb.Ctl.LastGoodRates()
	if wantRates == nil {
		t.Fatal("no last-good rates after epoch 1")
	}

	// Leader death: the lease dies with the process, the flock dies with
	// it, but its agent connections survive — the zombie case.
	lease.Close()
	if err := tb.Ctl.ReleaseState(); err != nil {
		t.Fatal(err)
	}

	p, err := rs.Tick() // miss 1 of 2
	if p != nil || err != nil {
		t.Fatalf("first miss tick: promotion=%v err=%v", p, err)
	}
	p, err = rs.Tick() // miss 2 of 2: election fires, standby 1 claims
	if err != nil {
		t.Fatalf("election tick: %v", err)
	}
	if p == nil {
		t.Fatal("election tick produced no promotion")
	}
	if p.StandbyID != 1 {
		t.Errorf("promoted standby = %d, want lowest live replica 1", p.StandbyID)
	}
	if !p.Recovery.Warm || p.Recovery.Epoch != 1 || p.Recovery.Generation != 2 {
		t.Errorf("promotion recovery = %+v, want warm epoch 1 gen 2", p.Recovery)
	}
	if !p.MirrorMatch {
		t.Error("tailed mirror did not match recovered state")
	}
	if !p.Reasserted || p.Degraded {
		t.Errorf("re-assert: reasserted=%v degraded=%v, want clean re-assert", p.Reasserted, p.Degraded)
	}
	if p.Elapsed >= 10*time.Second {
		t.Errorf("promotion took %v, want well under one TE period", p.Elapsed)
	}

	zombie := tb.AdoptPromoted(p.Ctl)
	t.Cleanup(func() { zombie.Close() })

	// The fleet converged back onto the last-good plan under generation 2.
	for _, a := range tb.Agents {
		if got := a.Rates(); !reflect.DeepEqual(got, wantRates) {
			t.Errorf("agent %s rates after failover = %v, want %v", a.Name, got, wantRates)
		}
		if got := a.MaxGen(); got != 2 {
			t.Errorf("agent %s fence = gen %d, want 2", a.Name, got)
		}
	}

	// The zombie still stamps generation 1; every write bounces off the
	// fence without mutating switch state.
	if _, err := zombie.UpdateRates(map[string]float64{"t0": 99}); err == nil {
		t.Fatal("zombie leader's post-promotion write accepted")
	}
	fenced := 0
	for _, a := range tb.Agents {
		fenced += a.FenceRejections()
		for id, r := range a.Rates() {
			if r != wantRates[id] {
				t.Errorf("agent %s rate %s mutated by fenced zombie: %v", a.Name, id, r)
			}
		}
	}
	if fenced == 0 {
		t.Error("no agent recorded a fence rejection")
	}

	// The replica set is inert after hand-off; the adopted controller runs
	// the next epoch as the recovered lineage.
	if p2, err := rs.Tick(); p2 != nil || err != nil {
		t.Fatalf("post-promotion tick: promotion=%v err=%v", p2, err)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if got := tb.Ctl.Epoch(); got != 2 {
		t.Errorf("epoch after failover + one round = %d, want 2", got)
	}
	m := rs.opt.Metrics
	if v := m.Counter("wan.failover.promotions").Value(); v != 1 {
		t.Errorf("wan.failover.promotions = %d, want 1", v)
	}
	if v := m.Counter("wan.failover.mirror_match").Value(); v != 1 {
		t.Errorf("wan.failover.mirror_match = %d, want 1", v)
	}
	if v := m.Counter("wan.failover.reasserts").Value(); v != 1 {
		t.Errorf("wan.failover.reasserts = %d, want 1", v)
	}
}

// TestPromotionBlockedByLiveLeader: a claim against a leader that still
// holds the flock — a partitioned standby that wrongly suspects leader
// death — fails typed with ErrPromotionBlocked and changes nothing; once
// the leader's storage lease is revoked the same claim succeeds.
func TestPromotionBlockedByLiveLeader(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, _, rs := newReplicaHarness(t, 1)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Tick(); err != nil {
		t.Fatal(err)
	}

	if _, err := rs.Promote(1); !errors.Is(err, ErrPromotionBlocked) {
		t.Fatalf("claim against live leader: err = %v, want ErrPromotionBlocked", err)
	}
	if rs.Promoted() {
		t.Fatal("blocked claim left the set promoted")
	}
	if v := rs.opt.Metrics.Counter("wan.failover.lock_blocked").Value(); v != 1 {
		t.Errorf("wan.failover.lock_blocked = %d, want 1", v)
	}

	// Storage lease revoked: the retried claim wins, one generation later.
	if err := tb.Ctl.ReleaseState(); err != nil {
		t.Fatal(err)
	}
	p, err := rs.Promote(1)
	if err != nil {
		t.Fatalf("claim after release: %v", err)
	}
	t.Cleanup(func() { p.Ctl.Close() })
	if !p.Recovery.Warm || p.Recovery.Generation != 2 {
		t.Errorf("recovery after release = %+v, want warm gen 2", p.Recovery)
	}
}

// TestDoublePromotionRace: two standbys race to claim the same freed state
// directory concurrently; the flock admits exactly one, the loser fails
// typed with ErrPromotionBlocked, and the run is clean under -race.
func TestDoublePromotionRace(t *testing.T) {
	checkGoroutineLeaks(t)
	tb, _, lease, rs := newReplicaHarness(t, 2)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Tick(); err != nil {
		t.Fatal(err)
	}
	lease.Close()
	if err := tb.Ctl.ReleaseState(); err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		p   *Promotion
		err error
	}
	results := make([]outcome, 2)
	var wg sync.WaitGroup
	for i, id := range []int{1, 2} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := rs.Promote(id)
			results[i] = outcome{p, err}
		}()
	}
	wg.Wait()

	var won, blocked int
	for _, r := range results {
		switch {
		case r.p != nil && r.err == nil:
			won++
			t.Cleanup(func() { r.p.Ctl.Close() })
			if !r.p.Recovery.Warm || r.p.Recovery.Generation != 2 {
				t.Errorf("winner recovery = %+v, want warm gen 2", r.p.Recovery)
			}
		case errors.Is(r.err, ErrPromotionBlocked):
			blocked++
		default:
			t.Errorf("unexpected race outcome: promotion=%v err=%v", r.p, r.err)
		}
	}
	if won != 1 || blocked != 1 {
		t.Fatalf("race admitted %d winners, blocked %d — want exactly 1 and 1", won, blocked)
	}
	if !rs.Promoted() {
		t.Error("set not marked promoted after the race")
	}
}

// TestReplicasQuietByteIdentity pins the -replicas=1 compatibility
// guarantee: a leader watched by read-only standbys produces exactly the
// same event sequence, the same agent-visible rates, and byte-identical
// state-directory files as an unwatched leader — replication is a
// read-only side channel until a failover actually happens.
func TestReplicasQuietByteIdentity(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(standbys int) (events []string, rates []map[string]float64, files map[string][32]byte) {
		dir := t.TempDir()
		tb := newStateTestbed(t)
		if _, err := tb.OpenState(dir); err != nil {
			t.Fatal(err)
		}
		var rs *ReplicaSet
		if standbys > 0 {
			lease, err := NewLeaseServer(tb.Ctl.Generation)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { lease.Close() })
			rs, err = NewReplicaSet(dir, lease.Addr(), agentAddrs(tb), ReplicaOptions{
				Standbys: standbys,
				Metrics:  obs.NewRegistry(),
				Log:      NewEventLog(),
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { rs.Close() })
		}
		for i := 0; i < 2; i++ {
			if _, err := tb.RunScenario(7); err != nil {
				t.Fatal(err)
			}
			if rs != nil {
				if p, err := rs.Tick(); p != nil || err != nil {
					t.Fatalf("quiet tick: promotion=%v err=%v", p, err)
				}
			}
		}
		for _, a := range tb.Agents {
			rates = append(rates, a.Rates())
		}
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files = make(map[string][32]byte, len(names))
		for _, de := range names {
			b, err := os.ReadFile(dir + "/" + de.Name())
			if err != nil {
				t.Fatal(err)
			}
			files[de.Name()] = sha256.Sum256(b)
		}
		return tb.Ctl.Log.Events(), rates, files
	}

	plainEvents, plainRates, plainFiles := run(0)
	watchEvents, watchRates, watchFiles := run(2)
	if !reflect.DeepEqual(watchEvents, plainEvents) {
		t.Errorf("leader event sequence diverged under watch:\n with: %v\n want: %v",
			watchEvents, plainEvents)
	}
	if !reflect.DeepEqual(watchRates, plainRates) {
		t.Errorf("agent rates diverged under watch: %v vs %v", watchRates, plainRates)
	}
	if !reflect.DeepEqual(watchFiles, plainFiles) {
		t.Errorf("state-directory bytes diverged under watch:\n with: %v\n want: %v",
			watchFiles, plainFiles)
	}
}

// TestLeaseServerProtocol: the lease answers pings with the leader's live
// generation and refuses anything else without dying.
func TestLeaseServerProtocol(t *testing.T) {
	checkGoroutineLeaks(t)
	var gen atomic.Uint64
	gen.Store(7)
	lease, err := NewLeaseServer(gen.Load)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lease.Close() })
	cn, err := TCPTransport{}.Dial("lease/1", lease.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cn.Close() })
	resp, err := cn.RoundTrip(&Request{Type: MsgPing}, time.Second)
	if err != nil || resp == nil || !resp.OK || resp.Gen != 7 {
		t.Fatalf("ping = %+v, %v; want OK gen 7", resp, err)
	}
	gen.Store(9)
	resp, err = cn.RoundTrip(&Request{Type: MsgPing}, time.Second)
	if err != nil || !resp.OK || resp.Gen != 9 {
		t.Fatalf("second ping = %+v, %v; want OK gen 9", resp, err)
	}
	if resp, _ := cn.RoundTrip(&Request{Type: MsgUpdateRates}, time.Second); resp == nil || resp.OK {
		t.Fatalf("lease accepted a non-ping request: %+v", resp)
	}
	// The connection survives the refusal.
	if resp, err := cn.RoundTrip(&Request{Type: MsgPing}, time.Second); err != nil || !resp.OK {
		t.Fatalf("ping after refusal = %+v, %v", resp, err)
	}
	if err := lease.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lease.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
