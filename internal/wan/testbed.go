package wan

import (
	"errors"
	"fmt"
	"time"

	"prete/internal/core"
	"prete/internal/ingest"
	"prete/internal/optical"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// Predictor is the NN inference hook the testbed calls on a degradation
// event (tests stub it; examples plug the trained internal/ml model).
type Predictor func(f optical.Features) float64

// PipelineTiming is the Fig 11a latency breakdown of one degradation
// reaction: detection, model inference, tunnel update (the dominant term),
// failure-scenario regeneration, and TE computation.
type PipelineTiming struct {
	Detection     time.Duration
	Inference     time.Duration
	TunnelUpdate  time.Duration
	ScenarioRegen time.Duration
	TECompute     time.Duration
	RateInstall   time.Duration
	// Degraded reports that the round completed through the graceful
	// degradation ladder rather than cleanly: a control-plane stage failed
	// even after per-RPC retries, and the pipeline fell back (previous
	// tunnel set, heuristic TE plan, or last-good rates) instead of wedging.
	Degraded bool
	// SolveTruncated reports the TE solve's compute budget expired and the
	// installed plan is a truncated incumbent or heuristic fallback rather
	// than a certified optimum — feasible either way.
	SolveTruncated bool
}

// Total returns the end-to-end reaction latency.
func (p PipelineTiming) Total() time.Duration {
	return p.Detection + p.Inference + p.TunnelUpdate + p.ScenarioRegen + p.TECompute + p.RateInstall
}

// Testbed wires the §5 setup: the three-site triangle topology, one switch
// agent per site, a VOA on the s1-s2 fiber, and the PreTE controller
// pipeline.
type Testbed struct {
	Net     *topology.Network
	Tunnels *routing.TunnelSet
	Agents  []*SwitchAgent
	Ctl     *Controller
	Predict Predictor
	// PI are the static failure probabilities of the three fibers (the
	// §2.2 values by default).
	PI []float64
	// TEPeriod, when positive, makes the TE period a hard deadline: the
	// solve stage receives SolveDeadline(TEPeriod) as its wall-clock
	// ceiling, so the round always has a plan to install before the next
	// period starts. 0 leaves the solve wall-clock-unbounded.
	TEPeriod time.Duration
	// SolveUnits caps the deterministic work of each TE solve
	// (core.Optimizer.BudgetUnits); 0 is unlimited. Unlike TEPeriod, unit
	// budgets keep seeded chaos runs bit-identical.
	SolveUnits int64
	// SolveTimeout, when positive, is an explicit wall-clock ceiling for the
	// TE solve (the -budget UNITS:TIMEOUT CLI form). It overrides the
	// TEPeriod derivation.
	SolveTimeout time.Duration
	// Classes, when non-nil and enabled (multi-tier), switches the reaction
	// round onto the class-aware ladder: a strict-priority classed solve
	// (one Benders solve per tier against residual capacity, each under
	// SolveUnits) followed by the predictive admission/shedding stage. A
	// nil or single-tier spec takes the exact uniform code path — every
	// output is byte-identical to a classless testbed (pinned by
	// TestClassesDisabledByteIdentity).
	Classes *te.ClassSpec
	// StormSignals are extra degraded fibers mixed into every reaction
	// round's Eqn. 1 calibration — the degradation-storm model the F9
	// failover row and the sloclass chaos coupling use. Empty leaves the
	// calibration exactly as before (only the detected fiber degraded).
	StormSignals []core.DegradationSignal

	// opt and solveCache are the persistent TE solver and its cross-epoch
	// warm-start cache (lazily built by solver): successive reaction rounds
	// reuse Benders cuts across epochs, and OpenState primes the cache on a
	// warm restart from the journaled probability vector.
	opt        *core.Optimizer
	solveCache *core.SolveCache
	// tierCaches and adm are the classed-path analogues: one warm-start
	// cache per tier (tier inputs have distinct fingerprints) and the
	// admission ladder's in-memory state. Like the solver cache, both are
	// process state: a restart or failover drops them.
	tierCaches []*core.SolveCache
	adm        *Admission
}

// solveDeadline resolves the round's wall-clock solve ceiling: an explicit
// SolveTimeout wins, otherwise it derives from the TE period.
func (tb *Testbed) solveDeadline() time.Duration {
	if tb.SolveTimeout > 0 {
		return tb.SolveTimeout
	}
	return SolveDeadline(tb.TEPeriod)
}

// solver returns the testbed's persistent optimizer and warm-start cache,
// building them on first use and refreshing the budget knobs (which the
// caller may have changed between rounds). Keeping one optimizer + cache
// alive across reaction rounds is what lets a quiet epoch re-solve reuse
// the previous epoch's Benders cuts instead of starting cold.
func (tb *Testbed) solver() (*core.Optimizer, *core.SolveCache) {
	if tb.opt == nil {
		tb.opt = core.DefaultOptimizer()
		tb.solveCache = &core.SolveCache{}
	}
	tb.opt.BudgetUnits = tb.SolveUnits
	tb.opt.SolveTimeout = tb.solveDeadline()
	tb.opt.Metrics = tb.Ctl.Metrics
	return tb.opt, tb.solveCache
}

// classedCaches returns the per-tier warm-start caches, (re)built when the
// spec's tier count changes.
func (tb *Testbed) classedCaches() []*core.SolveCache {
	if len(tb.tierCaches) != len(tb.Classes.Tiers) {
		tb.tierCaches = make([]*core.SolveCache, len(tb.Classes.Tiers))
		for i := range tb.tierCaches {
			tb.tierCaches[i] = &core.SolveCache{}
		}
	}
	return tb.tierCaches
}

// admissionLadder returns the testbed's admission stage, building it on
// first use against the active controller's metrics and event log.
func (tb *Testbed) admissionLadder() *Admission {
	if tb.adm == nil {
		tb.adm = NewAdmission(tb.Classes, tb.Ctl.Metrics, tb.Ctl.Log)
	}
	return tb.adm
}

// LastAdmission returns the most recent admission decision (nil before the
// first classed reaction round, and always nil with classes disabled).
func (tb *Testbed) LastAdmission() *AdmissionDecision {
	if tb.adm == nil {
		return nil
	}
	return tb.adm.Last()
}

// SolveCacheStats reports the warm-start cache counters of the testbed's
// persistent solver (zero-valued before the first solve).
func (tb *Testbed) SolveCacheStats() core.CacheStats {
	if tb.solveCache == nil {
		return core.CacheStats{}
	}
	return tb.solveCache.Stats()
}

// NewTestbed builds the triangle testbed with the given switch latencies
// over the production TCP transport.
func NewTestbed(cfg SwitchConfig, predict Predictor) (*Testbed, error) {
	return NewTestbedTransport(cfg, predict, TCPTransport{})
}

// NewTestbedTransport builds the testbed with the controller dialing
// through tr — the chaos experiments pass a fault.Transport here to inject
// deterministic control-plane faults between controller and agents.
func NewTestbedTransport(cfg SwitchConfig, predict Predictor, tr Transport) (*Testbed, error) {
	nodes := []topology.Node{{ID: 0, Name: "s1"}, {ID: 1, Name: "s2"}, {ID: 2, Name: "s3"}}
	fibers := []topology.Fiber{
		{ID: 0, A: 0, B: 1, LengthKm: 100},
		{ID: 1, A: 0, B: 2, LengthKm: 100},
		{ID: 2, A: 1, B: 2, LengthKm: 100},
	}
	var links []topology.Link
	add := func(src, dst topology.NodeID, f topology.FiberID) {
		links = append(links, topology.Link{
			ID: topology.LinkID(len(links)), Src: src, Dst: dst,
			Capacity: 100, Fibers: []topology.FiberID{f}, // 100 Gbps per wavelength (§5)
		})
	}
	add(0, 1, 0)
	add(1, 0, 0)
	add(0, 2, 1)
	add(2, 0, 1)
	add(1, 2, 2)
	add(2, 1, 2)
	net, err := topology.New("testbed", nodes, fibers, links)
	if err != nil {
		return nil, err
	}
	flows := []routing.Flow{{ID: 0, Src: 0, Dst: 1}, {ID: 1, Src: 0, Dst: 2}}
	ts, err := routing.BuildTunnels(net, flows, 1)
	if err != nil {
		return nil, err
	}
	tb := &Testbed{Net: net, Tunnels: ts, Predict: predict, PI: []float64{0.005, 0.009, 0.001}}
	agents := make(map[string]string, 3)
	for _, n := range nodes {
		a, err := NewSwitchAgent(n.Name, cfg)
		if err != nil {
			tb.Close()
			return nil, err
		}
		tb.Agents = append(tb.Agents, a)
		agents[n.Name] = a.Addr()
	}
	ctl, err := NewControllerTransport(tr, agents)
	if err != nil {
		tb.Close()
		return nil, err
	}
	tb.Ctl = ctl
	return tb, nil
}

// Close tears the testbed down.
func (tb *Testbed) Close() {
	if tb.Ctl != nil {
		tb.Ctl.Close()
	}
	for _, a := range tb.Agents {
		a.Close()
	}
}

// RunScenario replays the §5 VOA script (healthy 0-65 s, degraded
// 65-110 s, cut at 110 s) against the telemetry detector and, on the
// degradation signal, executes the full PreTE reaction pipeline, returning
// its timing breakdown. The optical timeline is replayed at full speed —
// wall-clock costs are only incurred by the real computations and the real
// TCP round-trips to the switch agents.
func (tb *Testbed) RunScenario(seed uint64) (*PipelineTiming, error) {
	fiberSim := optical.NewFiberSim(100, stats.NewRNG(seed))
	samples := optical.TestbedScript().Replay(fiberSim, 0)
	det := telemetry.NewDetector(2)
	var timing PipelineTiming
	for _, s := range samples {
		detectStart := time.Now()
		events := det.Observe(s)
		for _, ev := range events {
			if ev.Type != telemetry.DegradationStart {
				continue
			}
			timing.Detection = time.Since(detectStart)
			t, err := tb.reactToDegradation(ev)
			if err != nil {
				return nil, err
			}
			t.Detection = timing.Detection
			return t, nil
		}
	}
	return nil, fmt.Errorf("wan: the VOA script produced no degradation event")
}

// RunScenarioStream is RunScenario with the bare detector replaced by the
// streaming ingest pipeline (internal/ingest): the VOA script's samples
// arrive ratePerTick at a time on fiber 0, flow through the sharded rings,
// and the controller reacts to the first flushed DegradationStart exactly
// as the batch path does. shards <= 0 and ratePerTick <= 0 select the
// defaults (4 shards, one sample per tick). The returned ingest.Stats
// carries the pipeline's exact drop/merge accounting for the run; at
// default capacities the script never crosses the watermark, so the timing
// breakdown matches RunScenario's.
func (tb *Testbed) RunScenarioStream(seed uint64, shards, ratePerTick int) (*PipelineTiming, ingest.Stats, error) {
	fiberSim := optical.NewFiberSim(100, stats.NewRNG(seed))
	samples := optical.TestbedScript().Replay(fiberSim, 0)
	cfg := ingest.DefaultConfig()
	if shards > 0 {
		cfg.Shards = shards
	}
	cfg.ConfirmSamples = 2
	cfg.Metrics = tb.Ctl.Metrics
	pipe, err := ingest.New(tb.Net, cfg)
	if err != nil {
		return nil, ingest.Stats{}, err
	}
	if ratePerTick <= 0 {
		ratePerTick = 1
	}
	react := func(batches []ingest.FiberEvents, detectStart time.Time) (*PipelineTiming, error) {
		for _, b := range batches {
			for _, fe := range b.Events {
				if fe.Type != telemetry.DegradationStart {
					continue
				}
				detection := time.Since(detectStart)
				t, err := tb.reactToDegradation(fe.Event)
				if err != nil {
					return nil, err
				}
				t.Detection = detection
				return t, nil
			}
		}
		return nil, nil
	}
	for i := 0; i < len(samples); i += ratePerTick {
		detectStart := time.Now()
		end := min(i+ratePerTick, len(samples))
		arrivals := make([]ingest.Arrival, 0, end-i)
		for _, s := range samples[i:end] {
			arrivals = append(arrivals, ingest.Arrival{Fiber: 0, Sample: s})
		}
		batches, err := pipe.Tick(arrivals)
		if err != nil {
			return nil, pipe.Stats(), err
		}
		if t, err := react(batches, detectStart); err != nil || t != nil {
			return t, pipe.Stats(), err
		}
	}
	detectStart := time.Now()
	batches, err := pipe.Flush()
	if err != nil {
		return nil, pipe.Stats(), err
	}
	if t, err := react(batches, detectStart); err != nil || t != nil {
		return t, pipe.Stats(), err
	}
	return nil, pipe.Stats(), fmt.Errorf("wan: the VOA script produced no degradation event")
}

// reactToDegradation runs inference -> Algorithm 1 -> scenario regeneration
// -> TE computation -> rate installation, timing each stage. Control-plane
// failures that survive the controller's retry loop do not abort the round:
// the degradation ladder plans on the previous tunnel set when the new
// tunnels cannot be programmed, and keeps the last good rates when the
// adaptation push fails (agents are never left rate-less).
func (tb *Testbed) reactToDegradation(ev telemetry.Event) (*PipelineTiming, error) {
	var timing PipelineTiming
	if tb.TEPeriod > 0 {
		// The TE period bounds the whole reaction, retries included: an RPC
		// that would still be backing off when the next epoch is due gives
		// up instead of eating into it (see Controller.BeginRound).
		tb.Ctl.BeginRound(tb.TEPeriod)
		defer tb.Ctl.BeginRound(0)
	}
	// Model inference ("only takes several milliseconds", §5).
	t0 := time.Now()
	tb.Ctl.Log.Addf("stage inference")
	feats, err := optical.ExtractFeatures(ev.Window, 0, "testbed", "voa", 100)
	if err != nil {
		return nil, err
	}
	pNN := tb.Predict(feats)
	timing.Inference = time.Since(t0)

	// Tunnel update: Algorithm 1 + serialized installation on the agents.
	t0 = time.Now()
	tb.Ctl.Log.Addf("stage tunnel-update")
	upd, err := core.UpdateTunnels(tb.Tunnels, 0, 1)
	if err != nil {
		return nil, err
	}
	planTunnels := upd.Tunnels
	installs := tb.installsFor(upd)
	if _, err := tb.Ctl.InstallTunnels(installs); err != nil {
		if errors.Is(err, ErrControllerHalted) {
			// The controller process died mid-epoch: no ladder, no journal
			// entry for this epoch — the round aborts and the next
			// incarnation recovers the last journaled state from disk.
			return nil, err
		}
		// Ladder rung 1: the reactive tunnels could not all be programmed
		// even after retries. Plan on the previous tunnel set instead of
		// wedging; any tunnels that did land are harmless (no rates are
		// allocated to them), and the agents keep their installed state.
		tb.Ctl.Metrics.Counter("wan.fallback.tunnel_rounds").Inc()
		tb.Ctl.Log.Addf("fallback tunnels")
		planTunnels = tb.Tunnels
		timing.Degraded = true
	}
	timing.TunnelUpdate = time.Since(t0)

	// Failure-scenario regeneration (Eqn. 1 + enumeration). StormSignals
	// mix extra degraded fibers into the calibration; with none configured
	// the map is exactly the single detected fiber, as before.
	t0 = time.Now()
	tb.Ctl.Log.Addf("stage scenario-regen")
	degradedFibers := map[topology.FiberID]float64{0: pNN}
	for _, s := range tb.StormSignals {
		degradedFibers[s.Fiber] = s.PNN
	}
	probs, err := scenario.Calibrated(tb.PI, degradedFibers, 0.25)
	if err != nil {
		return nil, err
	}
	set, err := scenario.Enumerate(probs, scenario.DefaultOptions())
	if err != nil {
		return nil, err
	}
	timing.ScenarioRegen = time.Since(t0)

	// TE computation (Benders on the updated tunnels), bounded by the
	// round's compute budget: the TE period is a hard deadline, so a solve
	// that cannot finish degrades to a truncated incumbent or the heuristic
	// plan — rung three of the ladder — rather than blowing the period.
	// The solve goes through the testbed's persistent warm-start cache:
	// quiet epochs (unchanged scenario set and input) return the cached
	// plan, probability-only drift re-solves from the previous cut pool.
	t0 = time.Now()
	tb.Ctl.Log.Addf("stage te-compute")
	opt, cache := tb.solver()
	teIn := &te.Input{
		Net: tb.Net, Tunnels: planTunnels,
		Demands:   te.Demands{50, 50},
		Scenarios: set, Beta: 0.99,
	}
	var alloc te.Allocation
	var classed *core.ClassedResult
	if tb.Classes.Enabled() {
		// Class-aware ladder: strict-priority classed solve. Truncation and
		// fallback of any tier mark the round exactly as the uniform path
		// would.
		classed, err = opt.SolveClassedCached(teIn, tb.Classes, tb.classedCaches())
		if err != nil {
			return nil, err
		}
		var truncated, fellBack bool
		for _, tier := range classed.Tiers {
			truncated = truncated || tier.Res.Truncated
			fellBack = fellBack || tier.Res.Fallback
		}
		if truncated {
			timing.SolveTruncated = true
			tb.Ctl.Metrics.Counter("wan.solve.truncated_rounds").Inc()
			tb.Ctl.Log.Addf("te-solve truncated")
		}
		if fellBack {
			timing.Degraded = true
			tb.Ctl.Metrics.Counter("wan.solve.fallback_rounds").Inc()
			tb.Ctl.Log.Addf("te-solve fallback")
		}
		alloc = classed.Alloc
	} else {
		res, err := opt.SolveCached(teIn, cache)
		if err != nil {
			return nil, err
		}
		if res.Truncated {
			timing.SolveTruncated = true
			tb.Ctl.Metrics.Counter("wan.solve.truncated_rounds").Inc()
			tb.Ctl.Log.Addf("te-solve truncated")
		}
		if res.Fallback {
			// The heuristic plan is valid but unoptimized: record the round
			// as degraded, like the other ladder rungs.
			timing.Degraded = true
			tb.Ctl.Metrics.Counter("wan.solve.fallback_rounds").Inc()
			tb.Ctl.Log.Addf("te-solve fallback")
		}
		alloc = res.Alloc
	}
	timing.TECompute = time.Since(t0)

	// Rate adaptation push. Ladder rung 2: if the push cannot complete, the
	// controller re-asserts the last good table and the round is recorded
	// as degraded rather than failed.
	t0 = time.Now()
	tb.Ctl.Log.Addf("stage rate-install")
	rates := make(map[string]float64, len(alloc))
	for tid, amt := range alloc {
		rates[fmt.Sprintf("t%d", tid)] = amt
	}
	_, fellBack, err := tb.Ctl.UpdateRatesWithFallback(rates)
	if err != nil && errors.Is(err, ErrControllerHalted) {
		return nil, err
	} else if fellBack {
		timing.Degraded = true
	}
	timing.RateInstall = time.Since(t0)

	// Predictive admission: with classes enabled, the epoch's per-tier
	// decision is derived from the classed solve — or, when the rate push
	// fell back to the previous table, replayed from the previous decision
	// (the ladder's last-good rung).
	if classed != nil {
		adm := tb.admissionLadder()
		var dec *AdmissionDecision
		if fellBack {
			dec = adm.DecideLastGood()
		}
		if dec == nil {
			dec = adm.Decide(classed, true)
		}
		if err := dec.Check(); err != nil {
			return nil, err
		}
	}

	// The epoch completed (possibly degraded, but with a consistent plan
	// installed): journal it — including the scenario-set fingerprint, so
	// the next incarnation can warm-start the solver — and a warm restart
	// resumes from here. A nil store (no -state-dir) makes this a no-op,
	// and journaling is a write-only side channel — it never changes the
	// installed plan.
	if err := tb.Ctl.JournalEpoch(probs, set.Fingerprint()); err != nil {
		return nil, fmt.Errorf("wan: epoch completed but not journaled: %w", err)
	}
	return &timing, nil
}

// OpenState attaches a crash-safe state store under dir to the testbed's
// controller and, on a warm start, re-asserts the recovered last-good rate
// table fleet-wide — the agents of a restarted controller may themselves
// have restarted, so recovery pushes the plan instead of assuming it —
// then primes the persistent solver's warm-start cache from the journaled
// probability vector, so the first post-restart reaction round warm-starts
// instead of solving cold. The returned Recovery reports what was found;
// rec.Warm == false is a cold start (the ladder begins empty, exactly as
// without a state directory).
func (tb *Testbed) OpenState(dir string) (*Recovery, error) {
	rec, err := tb.Ctl.OpenState(dir)
	if err != nil {
		return nil, err
	}
	if rec.Warm {
		if last := tb.Ctl.LastGoodRates(); last != nil {
			if _, err := tb.Ctl.UpdateRates(last); err != nil {
				return rec, fmt.Errorf("wan: re-assert recovered rates: %w", err)
			}
		}
		tb.primeSolver()
	}
	return rec, nil
}

// primeSolver rebuilds the last journaled epoch's TE input — the same
// deterministic pipeline the reaction round runs: Algorithm 1 on the base
// tunnel set, then scenario enumeration from the recovered calibrated
// probabilities — checks the rebuilt scenario set against the journaled
// fingerprint, and solves it once into the warm-start cache. Priming is
// best-effort and write-only: any failure (fingerprint mismatch, solver
// error) leaves the cache cold, which only costs the next round a cold
// solve. A fingerprint mismatch means enumeration options or code changed
// across the restart; the stale plan must not be trusted, so the cache is
// left cold and the mismatch is counted.
func (tb *Testbed) primeSolver() {
	probs := tb.Ctl.LastProbs()
	if len(probs) == 0 {
		return
	}
	set, err := scenario.Enumerate(probs, scenario.DefaultOptions())
	if err != nil {
		tb.Ctl.Log.Addf("warmstart enumerate failed")
		return
	}
	if want := tb.Ctl.LastScenarioFP(); want != 0 {
		if got := set.Fingerprint(); got != want {
			tb.Ctl.Metrics.Counter("wan.recovery.scenario_fp_mismatch").Inc()
			tb.Ctl.Log.Addf("warmstart fingerprint mismatch")
			return
		}
		tb.Ctl.Metrics.Counter("wan.recovery.scenario_fp_match").Inc()
	}
	upd, err := core.UpdateTunnels(tb.Tunnels, 0, 1)
	if err != nil {
		return
	}
	opt, cache := tb.solver()
	in := &te.Input{
		Net: tb.Net, Tunnels: upd.Tunnels,
		Demands:   te.Demands{50, 50},
		Scenarios: set, Beta: 0.99,
	}
	if err := opt.Prime(in, cache); err != nil {
		tb.Ctl.Log.Addf("warmstart prime failed")
		return
	}
	tb.Ctl.Metrics.Counter("wan.warmstart.primed").Inc()
	tb.Ctl.Log.Addf("warmstart primed")
}

// RestartController simulates a controller process restart: the old
// incarnation is torn down (dropping its connections and releasing its
// state-directory lock) and a fresh controller dials the same agents
// through tr, inheriting the old tuning (timeout, retry policy, metrics,
// event log) but none of the in-memory state — that comes back, if at all,
// through OpenState.
func (tb *Testbed) RestartController(tr Transport) error {
	agents := make(map[string]string, len(tb.Agents))
	for _, a := range tb.Agents {
		agents[a.Name] = a.Addr()
	}
	old := tb.Ctl
	if old != nil {
		old.Close()
	}
	ctl, err := NewControllerTransport(tr, agents)
	if err != nil {
		return err
	}
	if old != nil {
		ctl.Timeout = old.Timeout
		ctl.Retry = old.Retry
		ctl.Metrics = old.Metrics
		ctl.Log = old.Log
		ctl.StateCompactEvery = old.StateCompactEvery
	}
	tb.Ctl = ctl
	// A real restart loses the in-memory solver state too; the warm-start
	// cache comes back, if at all, through OpenState's journal-driven
	// priming. The classed-path state (per-tier caches, admission backlog
	// and last-good decision) is equally in-memory and equally lost.
	tb.opt = nil
	tb.solveCache = nil
	tb.tierCaches = nil
	tb.adm = nil
	return nil
}

// AdoptPromoted installs a promoted replica's controller as the testbed's
// active controller — the failover analogue of RestartController. The old
// controller is returned rather than closed: failover tests keep the
// zombie predecessor alive and dialable to prove the agents fence its
// post-promotion RPCs (and a real dead leader cannot be "closed" anyway).
// Like a restart, adoption drops the in-memory solver state; if the
// promoted controller recovered warm, the warm-start cache is re-primed
// from its journaled probability vector.
func (tb *Testbed) AdoptPromoted(ctl *Controller) (zombie *Controller) {
	zombie = tb.Ctl
	tb.Ctl = ctl
	tb.opt = nil
	tb.solveCache = nil
	tb.tierCaches = nil
	tb.adm = nil
	if len(ctl.LastProbs()) > 0 {
		tb.primeSolver()
	}
	return zombie
}

// installsFor maps Algorithm 1's new tunnels to per-switch install
// commands (the head-end switch of each tunnel programs it).
func (tb *Testbed) installsFor(upd *core.UpdateResult) []TunnelInstall {
	var out []TunnelInstall
	for _, tn := range upd.Tunnels.Tunnels {
		if !tn.New {
			continue
		}
		head := tb.Net.Nodes[int(upd.Tunnels.Flows[tn.Flow].Src)]
		path := make([]int, len(tn.Links))
		for i, l := range tn.Links {
			path[i] = int(l)
		}
		out = append(out, TunnelInstall{Switch: head.Name, TunnelID: int(tn.ID), Path: path})
	}
	return out
}

// MeasureInstallScaling measures tunnel installation wall time for
// growing batch sizes (Fig 11b).
func MeasureInstallScaling(cfg SwitchConfig, counts []int) (map[int]time.Duration, error) {
	agent, err := NewSwitchAgent("s1", cfg)
	if err != nil {
		return nil, err
	}
	defer agent.Close()
	ctl, err := NewController(map[string]string{"s1": agent.Addr()})
	if err != nil {
		return nil, err
	}
	defer ctl.Close()
	out := make(map[int]time.Duration, len(counts))
	next := 0
	for _, n := range counts {
		installs := make([]TunnelInstall, n)
		for i := range installs {
			installs[i] = TunnelInstall{Switch: "s1", TunnelID: next, Path: []int{0, 1}}
			next++
		}
		d, err := ctl.InstallTunnels(installs)
		if err != nil {
			return nil, err
		}
		out[n] = d
	}
	return out, nil
}
