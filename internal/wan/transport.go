package wan

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Conn is the controller's message pipe to one switch agent: a synchronous
// request/response round trip plus teardown. The production implementation
// is the persistent JSON-over-TCP connection dialed by TCPTransport;
// internal/fault wraps any Conn with a deterministic fault injector.
//
// RoundTrip's error contract carries the retry semantics the controller
// relies on: a non-nil Response alongside a non-nil error is an
// application-level rejection by the switch (the request was parsed and
// refused — retrying identical content cannot succeed), while a nil
// Response is a transport failure (timeout, broken pipe, injected fault)
// that a retry may well recover from.
type Conn interface {
	RoundTrip(req *Request, timeout time.Duration) (*Response, error)
	Close() error
}

// Transport dials switch agents by name and address. Implementations must
// return Conns that remain usable after a transport error (re-dialing
// internally if the underlying stream died), because the controller's retry
// loop re-issues requests on the same Conn.
type Transport interface {
	Dial(name, addr string) (Conn, error)
}

// TCPTransport is the production transport: one persistent JSON-over-TCP
// connection per agent that transparently re-dials after transport errors.
// A timed-out RPC leaves the byte stream desynchronized (the late response
// is still in flight) and an agent restart closes it; either way the next
// round trip starts from a fresh dial.
type TCPTransport struct{}

// Dial connects to one agent and verifies reachability.
func (TCPTransport) Dial(name, addr string) (Conn, error) {
	c := &tcpConn{addr: addr}
	if err := c.ensure(); err != nil {
		return nil, fmt.Errorf("wan: dial %s (%s): %w", name, addr, err)
	}
	return c, nil
}

// tcpConn is one re-dialing JSON-over-TCP connection.
type tcpConn struct {
	addr string

	mu sync.Mutex
	c  *conn // nil when the stream is down and must be re-dialed
}

func (t *tcpConn) ensure() error {
	if t.c != nil {
		return nil
	}
	raw, err := net.Dial("tcp", t.addr)
	if err != nil {
		return err
	}
	t.c = newConn(raw)
	return nil
}

func (t *tcpConn) RoundTrip(req *Request, timeout time.Duration) (*Response, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ensure(); err != nil {
		return nil, fmt.Errorf("wan: redial %s: %w", t.addr, err)
	}
	resp, err := t.c.roundTrip(req, timeout)
	if err != nil && resp == nil {
		// Transport-level failure: the stream may hold a stale or partial
		// response, so drop the connection and re-dial on the next RPC.
		t.c.close()
		t.c = nil
	}
	return resp, err
}

func (t *tcpConn) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.c == nil {
		return nil
	}
	err := t.c.close()
	t.c = nil
	return err
}
