package wan

import (
	"fmt"
	"sync"

	"prete/internal/core"
	"prete/internal/obs"
	"prete/internal/te"
)

// TierDecision is one tier's admission outcome for one epoch. The
// accounting is exact by construction: Shed and Deferred are computed as
// Offered - Admitted (never re-derived), so
// Offered - Admitted - Shed - Deferred is exactly zero in floating point.
type TierDecision struct {
	// Tier and Policy echo the spec entry the decision applied.
	Tier   string
	Policy te.TierPolicy
	// Rung is the ladder rung taken: "clean" (no uncarriable residual),
	// "protect" / "defer" / "shed" (the tier's policy applied to its
	// residual), or "last-good" (solver unusable; previous decision
	// replayed).
	Rung string
	// Offered is the tier's demand this epoch in Gbps, including any
	// backlog deferred from previous epochs.
	Offered float64
	// Admitted is the Gbps admitted onto the network.
	Admitted float64
	// Shed is the Gbps dropped outright (shed-policy residual).
	Shed float64
	// Deferred is the Gbps held back as backlog for the next epoch
	// (defer-policy residual).
	Deferred float64
	// Phi is the tier's predicted uncarriable fraction — the plan's
	// expected loss over the calibrated scenario set (core
	// TierResult.ExpectedLoss) the residual was derived from.
	Phi float64
}

// AdmissionDecision is one epoch's full admission outcome, one entry per
// tier in spec order.
type AdmissionDecision struct {
	// Tick numbers the decisions an Admission has made, from 1.
	Tick int
	// Degraded reports the epoch ran under a degradation signal.
	Degraded bool
	// LastGood reports the decision replays the previous epoch's numbers
	// because the solver was unusable this epoch.
	LastGood bool
	Tiers    []TierDecision
}

// Check verifies the exact accounting invariant on every tier:
// offered = admitted + shed + deferred, with zero floating-point slack.
func (d *AdmissionDecision) Check() error {
	for _, t := range d.Tiers {
		if r := d.residual(t); r != 0 {
			return fmt.Errorf("wan: tier %s accounting violated: offered %v - admitted %v - shed %v - deferred %v = %v",
				t.Tier, t.Offered, t.Admitted, t.Shed, t.Deferred, r)
		}
		if t.Admitted < 0 || t.Shed < 0 || t.Deferred < 0 {
			return fmt.Errorf("wan: tier %s has a negative component: %+v", t.Tier, t)
		}
	}
	return nil
}

func (d *AdmissionDecision) residual(t TierDecision) float64 {
	return t.Offered - t.Admitted - t.Shed - t.Deferred
}

// Admission is the predictive admission/shedding stage of the class-aware
// degradation ladder. Each epoch under degradation it takes the classed
// solve's per-tier achievable allocations (the calibrated scenario set's
// verdict on what each class can provably carry) and walks the tier order:
// sheddable residual is dropped, deferrable residual becomes backlog
// re-offered next epoch, protected residual is admitted anyway (carried
// degraded), and when no usable solve exists the previous decision replays
// as the last-good rung. Decisions are deterministic functions of the
// solver results and prior decisions — no wall-clock, no randomness — so
// replays are bit-identical.
type Admission struct {
	spec    *te.ClassSpec
	metrics *obs.Registry
	log     *EventLog

	mu       sync.Mutex
	tick     int
	backlog  []float64
	lastGood *AdmissionDecision
}

// NewAdmission builds the admission stage for a class spec. The registry
// and log may be nil (decisions are then unobserved but identical —
// admission follows the same write-only observability contract as the rest
// of the controller).
func NewAdmission(spec *te.ClassSpec, metrics *obs.Registry, log *EventLog) *Admission {
	return &Admission{
		spec:    spec,
		metrics: metrics,
		log:     log,
		backlog: make([]float64, len(spec.Tiers)),
	}
}

// Decide computes the epoch's admission outcome from a classed solve
// result. The result's tiers must match the spec's (core.SolveClassed
// guarantees this). A successful decision becomes the new last-good.
func (a *Admission) Decide(cr *core.ClassedResult, degraded bool) *AdmissionDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tick++
	dec := &AdmissionDecision{Tick: a.tick, Degraded: degraded}
	for k, tier := range cr.Tiers {
		base := tier.Offered
		offered := base + a.backlog[k]
		phi := tier.ExpectedLoss
		if phi < 0 {
			phi = 0
		} else if phi > 1 {
			phi = 1
		}
		td := TierDecision{Tier: tier.Name, Policy: tier.Policy, Offered: offered, Phi: phi}
		switch {
		case !degraded || phi == 0:
			// No provable residual: admit everything, drain the backlog.
			td.Rung = "clean"
			td.Admitted = offered
			a.backlog[k] = 0
		case tier.Policy == te.PolicyProtect:
			// Protected traffic is never rejected; its residual rides the
			// degraded plan rather than the admission ladder.
			td.Rung = "protect"
			td.Admitted = offered
			a.backlog[k] = 0
		case tier.Policy == te.PolicyDefer:
			// Admit the provably-carriable share of the base demand; the
			// rest (including prior backlog, which the solve never planned
			// for) waits for the next epoch.
			td.Rung = "defer"
			td.Admitted = (1 - phi) * base
			td.Deferred = offered - td.Admitted
			a.backlog[k] = td.Deferred
		default: // te.PolicyShed
			td.Rung = "shed"
			td.Admitted = (1 - phi) * base
			td.Shed = offered - td.Admitted
			a.backlog[k] = 0
		}
		dec.Tiers = append(dec.Tiers, td)
	}
	a.lastGood = dec
	a.observe(dec)
	return dec
}

// DecideLastGood is the ladder's floor: the epoch has no usable solve (or
// the rate push fell back to the previous table), so the previous
// decision's numbers replay verbatim under the "last-good" rung. Backlog is
// left untouched — it already reflects the replayed decision. Returns nil
// when no previous decision exists.
func (a *Admission) DecideLastGood() *AdmissionDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastGood == nil {
		return nil
	}
	a.tick++
	dec := &AdmissionDecision{Tick: a.tick, Degraded: true, LastGood: true}
	for _, td := range a.lastGood.Tiers {
		td.Rung = "last-good"
		dec.Tiers = append(dec.Tiers, td)
	}
	a.observe(dec)
	return dec
}

// Last returns the most recent decision (nil before the first).
func (a *Admission) Last() *AdmissionDecision {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lastGood == nil {
		return nil
	}
	return a.lastGood
}

// observe emits the decision's event lines and metrics. Event lines carry
// no wall-clock or tick values, so identical decisions render identically —
// the replay-determinism hook the F9 failover row asserts on.
func (a *Admission) observe(dec *AdmissionDecision) {
	a.metrics.Counter("wan.admission.ticks").Inc()
	if dec.Degraded {
		a.metrics.Counter("wan.admission.degraded_ticks").Inc()
	}
	if dec.LastGood {
		a.metrics.Counter("wan.admission.lastgood_ticks").Inc()
	}
	for _, td := range dec.Tiers {
		a.log.Addf("admission tier=%s rung=%s offered=%.3f admitted=%.3f shed=%.3f deferred=%.3f phi=%.4f",
			td.Tier, td.Rung, td.Offered, td.Admitted, td.Shed, td.Deferred, td.Phi)
		a.metrics.Counter("wan.admission.rung." + td.Rung).Inc()
		a.metrics.Gauge("wan.admission.offered." + td.Tier).Set(td.Offered)
		a.metrics.Gauge("wan.admission.admitted." + td.Tier).Set(td.Admitted)
		a.metrics.Gauge("wan.admission.shed." + td.Tier).Set(td.Shed)
		a.metrics.Gauge("wan.admission.deferred." + td.Tier).Set(td.Deferred)
		a.metrics.Gauge("wan.admission.shed_total." + td.Tier).Add(td.Shed)
		a.metrics.Gauge("wan.admission.deferred_total." + td.Tier).Add(td.Deferred)
	}
}
