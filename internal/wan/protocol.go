// Package wan emulates the production control plane of §5's testbed: switch
// agents speaking a JSON-over-TCP protocol to a centralized controller that
// installs tunnels (serially, matching the production behaviour behind
// Fig 11b's linear update time) and pushes rate-adaptation tables. Combined
// with the optical.VOA script it reproduces the §5 scenario end to end and
// measures the Fig 11a latency breakdown.
package wan

import (
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// MsgType enumerates protocol requests.
type MsgType string

// Protocol message types.
const (
	MsgInstallTunnel MsgType = "install_tunnel"
	MsgRemoveTunnel  MsgType = "remove_tunnel"
	MsgUpdateRates   MsgType = "update_rates"
	MsgPing          MsgType = "ping"
	// MsgReplRecord carries one CRC-framed journal record from a leader to a
	// cross-site standby (Request.Frame); MsgReplSnapshot carries a full-state
	// snapshot frame for re-sync. Both are answered with Response.Ack (the
	// standby's contiguous applied prefix) and possibly Response.Resync.
	MsgReplRecord   MsgType = "repl_record"
	MsgReplSnapshot MsgType = "repl_snapshot"
)

// Request is a controller -> switch message. Gen and Seq implement the
// controller-incarnation fence: Gen is the sender's durable generation
// (persist.Store.Generation), Seq a per-peer monotone sequence. Both are
// zero — and absent from the wire, keeping the encoding byte-identical to
// the unfenced protocol — when the controller runs without a state store.
// Leader names the sending controller incarnation (site id); it breaks
// ties between two claimants that fenced to the same generation from
// different sites, where no shared lock can arbitrate. Frame is a
// replication frame (repl messages only). All three extension fields are
// omitted from the wire when unset, keeping the legacy encoding
// byte-identical.
type Request struct {
	Type     MsgType            `json:"type"`
	TunnelID int                `json:"tunnel_id,omitempty"`
	Path     []int              `json:"path,omitempty"` // link IDs
	Rates    map[string]float64 `json:"rates,omitempty"`
	Gen      uint64             `json:"gen,omitempty"`
	Seq      uint64             `json:"seq,omitempty"`
	Leader   string             `json:"leader,omitempty"`
	Frame    []byte             `json:"frame,omitempty"`
}

// Response is a switch -> controller message. Stale marks a fence
// rejection: the request carried a generation older than one the agent has
// already seen, i.e. it came from a dead controller incarnation; Gen then
// reports the generation the agent is fenced to.
// Ack and Resync answer replication messages: Ack is the standby's
// contiguous applied sequence prefix, and Resync asks the shipper to fall
// back to a snapshot re-sync (the standby detected a gap or a corrupt
// frame). Both are omitted from the wire when unset.
type Response struct {
	OK       bool    `json:"ok"`
	Err      string  `json:"err,omitempty"`
	TookMS   float64 `json:"took_ms"`
	TunnelID int     `json:"tunnel_id,omitempty"`
	Stale    bool    `json:"stale,omitempty"`
	Gen      uint64  `json:"gen,omitempty"`
	Ack      uint64  `json:"ack,omitempty"`
	Resync   bool    `json:"resync,omitempty"`
}

// conn wraps a TCP connection with JSON framing (one JSON value per line,
// via the stdlib stream encoder/decoder).
type conn struct {
	raw net.Conn
	enc *json.Encoder
	dec *json.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{raw: c, enc: json.NewEncoder(c), dec: json.NewDecoder(c)}
}

func (c *conn) writeRequest(r *Request) error   { return c.enc.Encode(r) }
func (c *conn) readRequest(r *Request) error    { return c.dec.Decode(r) }
func (c *conn) writeResponse(r *Response) error { return c.enc.Encode(r) }
func (c *conn) readResponse(r *Response) error  { return c.dec.Decode(r) }
func (c *conn) close() error                    { return c.raw.Close() }

// roundTrip sends a request and waits for its response with a deadline.
func (c *conn) roundTrip(req *Request, timeout time.Duration) (*Response, error) {
	if timeout > 0 {
		if err := c.raw.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		defer c.raw.SetDeadline(time.Time{})
	}
	if err := c.writeRequest(req); err != nil {
		return nil, fmt.Errorf("wan: send %s: %w", req.Type, err)
	}
	var resp Response
	if err := c.readResponse(&resp); err != nil {
		return nil, fmt.Errorf("wan: recv %s: %w", req.Type, err)
	}
	if !resp.OK {
		return &resp, fmt.Errorf("wan: switch rejected %s: %s", req.Type, resp.Err)
	}
	return &resp, nil
}
