package wan

import (
	"reflect"
	"testing"

	"prete/internal/scenario"
)

// TestSolveCachePersistsAcrossRounds: two identical reaction rounds on one
// controller incarnation — the second TE solve must be served from the
// warm-start cache, and the installed rates must not move.
func TestSolveCachePersistsAcrossRounds(t *testing.T) {
	checkGoroutineLeaks(t)
	tb := newStateTestbed(t)
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	firstRates := tb.Ctl.LastGoodRates()
	st := tb.SolveCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after round 1: cache stats = %+v, want 1 miss 0 hits", st)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	st = tb.SolveCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("after round 2: cache stats = %+v, want 1 miss 1 hit", st)
	}
	if got := tb.Ctl.LastGoodRates(); !reflect.DeepEqual(got, firstRates) {
		t.Errorf("cached round installed different rates: %v vs %v", got, firstRates)
	}
}

// TestJournalFingerprintRoundtrip: the scenario-set fingerprint journaled
// with the epoch survives a crash-restart and comes back through
// LastScenarioFP and the recovered EpochState.
func TestJournalFingerprintRoundtrip(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	tb := newStateTestbed(t)
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	want := tb.Ctl.LastScenarioFP()
	if want == 0 {
		t.Fatal("reaction round journaled a zero scenario fingerprint")
	}
	// The fingerprint must be the one the round's enumeration produces.
	set, err := scenario.Enumerate(tb.Ctl.LastProbs(), scenario.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Fingerprint(); got != want {
		t.Fatalf("journaled fingerprint %s does not match re-enumeration %s", want, got)
	}

	if err := tb.RestartController(TCPTransport{}); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warm {
		t.Fatalf("restart did not recover warm: %+v", rec)
	}
	if rec.State.ScenarioFP != uint64(want) {
		t.Errorf("recovered EpochState.ScenarioFP = %#x, want %s", rec.State.ScenarioFP, want)
	}
	if got := tb.Ctl.LastScenarioFP(); got != want {
		t.Errorf("LastScenarioFP after recovery = %s, want %s", got, want)
	}
}

// TestWarmRestartPrimesSolver: after a crash-restart against a journaled
// state directory, OpenState rebuilds the epoch's TE input, verifies the
// scenario fingerprint, and primes the solver cache — so the first
// post-restart reaction round is a cache hit, not a cold solve.
func TestWarmRestartPrimesSolver(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	tb := newStateTestbed(t)
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	wantRates := tb.Ctl.LastGoodRates()

	if err := tb.RestartController(TCPTransport{}); err != nil {
		t.Fatal(err)
	}
	// A restart loses the in-memory cache: stats must read all-zero again.
	if st := tb.SolveCacheStats(); st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("cache survived RestartController: %+v", st)
	}
	rec, err := tb.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warm {
		t.Fatalf("restart did not recover warm: %+v", rec)
	}
	m := tb.Ctl.Metrics
	if v := m.Counter("wan.recovery.scenario_fp_match").Value(); v != 1 {
		t.Errorf("wan.recovery.scenario_fp_match = %d, want 1", v)
	}
	if v := m.Counter("wan.warmstart.primed").Value(); v != 1 {
		t.Errorf("wan.warmstart.primed = %d, want 1", v)
	}
	// Priming itself is the cache's one (cold) miss.
	st := tb.SolveCacheStats()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after priming: cache stats = %+v, want 1 miss 0 hits", st)
	}
	// The first post-restart reaction round hits the primed cache and
	// reinstalls the same rates the pre-crash epoch computed.
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	st = tb.SolveCacheStats()
	if st.Hits != 1 {
		t.Errorf("post-restart round: cache stats = %+v, want 1 hit", st)
	}
	if got := tb.Ctl.LastGoodRates(); !reflect.DeepEqual(got, wantRates) {
		t.Errorf("post-restart rates = %v, want pre-crash %v", got, wantRates)
	}
}

// TestWarmRestartFingerprintMismatchSkipsPriming: a journaled fingerprint
// that disagrees with what recovery can re-enumerate (options or code
// drifted across the restart) must leave the solver cache cold and count
// the mismatch.
func TestWarmRestartFingerprintMismatchSkipsPriming(t *testing.T) {
	checkGoroutineLeaks(t)
	dir := t.TempDir()
	tb := newStateTestbed(t)
	if _, err := tb.OpenState(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.RunScenario(7); err != nil {
		t.Fatal(err)
	}
	// Journal one more epoch whose fingerprint cannot be reproduced from its
	// probability vector — the shape of an enumeration-option change.
	if err := tb.Ctl.JournalEpoch(tb.Ctl.LastProbs(), scenario.Fingerprint(0xdeadbeef)); err != nil {
		t.Fatal(err)
	}

	if err := tb.RestartController(TCPTransport{}); err != nil {
		t.Fatal(err)
	}
	rec, err := tb.OpenState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Warm {
		t.Fatalf("restart did not recover warm: %+v", rec)
	}
	m := tb.Ctl.Metrics
	if v := m.Counter("wan.recovery.scenario_fp_mismatch").Value(); v != 1 {
		t.Errorf("wan.recovery.scenario_fp_mismatch = %d, want 1", v)
	}
	if v := m.Counter("wan.warmstart.primed").Value(); v != 0 {
		t.Errorf("wan.warmstart.primed = %d, want 0 (priming must be skipped)", v)
	}
	if st := tb.SolveCacheStats(); st.Misses != 0 && st.Hits != 0 {
		t.Errorf("cache touched despite fingerprint mismatch: %+v", st)
	}
}
