package wan

import (
	"fmt"
	"sync"
)

// EventLog is an ordered, concurrency-safe record of control-plane events:
// RPC outcomes, retries, give-ups, fallbacks, and pipeline stage entries.
// Durations and other wall-clock values are deliberately excluded, so two
// runs with the same workload and the same injected-fault seed produce
// byte-identical logs — the chaos determinism tests diff them directly.
// All methods are nil-safe; a nil log records nothing.
type EventLog struct {
	mu     sync.Mutex
	events []string
}

// NewEventLog returns an empty log.
func NewEventLog() *EventLog { return &EventLog{} }

// Addf appends one formatted event.
func (l *EventLog) Addf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, fmt.Sprintf(format, args...))
}

// Events returns a copy of the recorded events in order.
func (l *EventLog) Events() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

// Len returns the number of recorded events.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}
