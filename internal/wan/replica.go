package wan

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"time"

	"prete/internal/obs"
	"prete/internal/persist"
)

// ErrPromotionBlocked reports that a standby could not take over the state
// directory: either the current leader (or a faster sibling standby) still
// holds the flock, or another standby in this set has already been
// promoted. The caller backs off and retries on a later tick — two
// candidates can race into an election, but the store's single-opener lock
// guarantees at most one wins.
var ErrPromotionBlocked = errors.New("wan: promotion blocked")

// LeaseServer is the leader-liveness endpoint of a replicated controller:
// a loopback listener speaking the existing JSON request/response protocol,
// answering MsgPing with the leader's current fence generation. Standbys
// heartbeat it through any wan.Transport — which is exactly what makes the
// election seam fault-injectable: wrapping the standby's transport with
// fault.Transport drops or partitions heartbeats deterministically, and
// killing the leader process is modeled by closing the server. The server
// dies with its listener, so a kill -9 takes the lease down with it.
type LeaseServer struct {
	gen func() uint64
	ln  net.Listener

	connMu sync.Mutex
	conns  map[*conn]struct{}

	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
}

// NewLeaseServer starts a lease endpoint on a fresh loopback port. gen is
// polled on every heartbeat (pass Controller.Generation); it must be safe
// for concurrent use.
func NewLeaseServer(gen func() uint64) (*LeaseServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("wan: lease listen: %w", err)
	}
	s := &LeaseServer{
		gen:    gen,
		ln:     ln,
		conns:  make(map[*conn]struct{}),
		closed: make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the lease endpoint's listen address.
func (s *LeaseServer) Addr() string { return s.ln.Addr().String() }

// Close kills the lease: the listener and every live heartbeat connection
// are severed, so standbys start missing immediately — this is how a test
// (or a process exit path) models leader death. Idempotent.
func (s *LeaseServer) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.close()
		}
		s.connMu.Unlock()
		s.wg.Wait()
	})
	return err
}

func (s *LeaseServer) track(c *conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *LeaseServer) untrack(c *conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

func (s *LeaseServer) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		cn := newConn(c)
		if !s.track(cn) {
			cn.close()
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(cn)
			s.serve(cn)
		}()
	}
}

func (s *LeaseServer) serve(c *conn) {
	defer c.close()
	for {
		var req Request
		if err := c.readRequest(&req); err != nil {
			return
		}
		resp := &Response{OK: true, Gen: s.gen()}
		if req.Type != MsgPing {
			resp = &Response{Err: fmt.Sprintf("lease: unsupported message %q", req.Type)}
		}
		if err := c.writeResponse(resp); err != nil {
			return
		}
	}
}

// ReplicaOptions tunes a ReplicaSet.
type ReplicaOptions struct {
	// Standbys is the number of hot standbys (replica IDs 1..Standbys; the
	// leader is implicitly replica 0). 0 is a valid, empty set.
	Standbys int
	// MissThreshold is the number of consecutive heartbeat misses after
	// which a standby declares the leader dead; <= 0 selects 3.
	MissThreshold int
	// HeartbeatTimeout bounds one heartbeat round trip; <= 0 selects 500 ms.
	HeartbeatTimeout time.Duration
	// Transport is what a promoted standby dials the switch agents through
	// (chaos tests pass a fault.Transport); nil selects TCPTransport.
	Transport Transport
	// Heartbeat supplies the per-standby heartbeat transport, so a test can
	// partition one standby's view of the lease without touching the others;
	// nil selects TCPTransport for every standby. Standby id's heartbeats
	// dial the lease under the peer name "lease/<id>", giving each standby a
	// decorrelated per-peer fault stream.
	Heartbeat func(id int) Transport
	// Timeout and Retry tune the promoted controller's RPCs (zero values
	// keep the wan defaults).
	Timeout time.Duration
	Retry   RetryPolicy
	// Metrics receives the wan.election.* and wan.failover.* series.
	Metrics *obs.Registry
	// Log records the ordered, wall-clock-free election/failover events
	// (replica tails, heartbeat misses, elections, promotions) that the
	// bit-identical-replay tests diff.
	Log *EventLog
}

func (o ReplicaOptions) withDefaults() ReplicaOptions {
	if o.MissThreshold <= 0 {
		o.MissThreshold = 3
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 500 * time.Millisecond
	}
	if o.Transport == nil {
		o.Transport = TCPTransport{}
	}
	return o
}

// Standby is one warm controller-in-waiting: a read-only journal tail
// keeping a mirror of the leader's EpochState, and a heartbeat connection
// to the leader's lease. It holds no lock and no agent connections until
// promoted.
type Standby struct {
	id int
	rd *persist.Reader
	hb Conn

	// Guarded by the owning ReplicaSet's mu.
	mirror   *EpochState
	misses   int
	crashed  bool
	promoted bool
}

// StandbyStatus is a point-in-time snapshot of one standby.
type StandbyStatus struct {
	// ID is the replica id (1-based; the leader is 0).
	ID int
	// Epoch is the mirror's epoch (0 = nothing tailed yet).
	Epoch uint64
	// Misses is the current consecutive heartbeat-miss count.
	Misses int
	// Crashed and Promoted report the standby's lifecycle state.
	Crashed, Promoted bool
}

// Promotion is the outcome of a successful leader hand-off.
type Promotion struct {
	// StandbyID is the replica that took over.
	StandbyID int
	// Ctl is the promoted controller: fenced under a fresh generation, state
	// recovered from the shared directory, agents dialed. Ownership passes
	// to the caller (Testbed.AdoptPromoted installs it; the caller closes it).
	Ctl *Controller
	// Recovery is what the promoted controller recovered from the directory.
	Recovery *Recovery
	// MirrorMatch reports that the standby's tailed mirror agreed exactly
	// with the durably recovered state — the journal-tailing path and the
	// recovery path saw the same bytes.
	MirrorMatch bool
	// Reasserted reports the recovered last-good rate table was re-installed
	// fleet-wide under the new generation.
	Reasserted bool
	// Degraded reports the re-assert could not complete cleanly (agents keep
	// whatever table they have, which still routes traffic).
	Degraded bool
	// Elapsed is the wall time from election to hand-off complete.
	Elapsed time.Duration
}

// ReplicaSet manages the hot standbys of one controller: per-tick journal
// tailing, heartbeat failure detection, and deterministic leader election.
// Everything observable is tick-driven and seeded — which standby detects
// the death, on which tick, and who wins the election replay bit-identically
// for a fixed harness schedule and fault seed. The election rule is
// lowest-live-replica-wins: on each tick, the lowest-numbered live standby
// whose consecutive miss count has reached MissThreshold claims the state
// directory; the persist flock arbitrates any race (a claim against a held
// lock fails typed, and the loser retries on a later tick).
type ReplicaSet struct {
	dir    string
	agents map[string]string
	opt    ReplicaOptions

	mu       sync.Mutex
	standbys []*Standby
	promoted bool
}

// NewReplicaSet builds opt.Standbys warm standbys for the controller whose
// state directory is dir and whose lease listens at leaseAddr; agents is
// the switch fleet (name -> address) a promoted standby will dial.
func NewReplicaSet(dir, leaseAddr string, agents map[string]string, opt ReplicaOptions) (*ReplicaSet, error) {
	if dir == "" {
		return nil, fmt.Errorf("wan: replica set needs a state directory")
	}
	opt = opt.withDefaults()
	rs := &ReplicaSet{dir: dir, agents: agents, opt: opt}
	for id := 1; id <= opt.Standbys; id++ {
		rd, err := persist.OpenReader(dir, persist.ReaderOptions{Metrics: opt.Metrics})
		if err != nil {
			rs.Close()
			return nil, err
		}
		hbtr := Transport(TCPTransport{})
		if opt.Heartbeat != nil {
			hbtr = opt.Heartbeat(id)
		}
		hb, err := hbtr.Dial(fmt.Sprintf("lease/%d", id), leaseAddr)
		if err != nil {
			rd.Close()
			rs.Close()
			return nil, fmt.Errorf("wan: replica %d: dial lease: %w", id, err)
		}
		rs.standbys = append(rs.standbys, &Standby{id: id, rd: rd, hb: hb})
	}
	return rs, nil
}

// Status snapshots every standby in replica-id order.
func (rs *ReplicaSet) Status() []StandbyStatus {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]StandbyStatus, 0, len(rs.standbys))
	for _, s := range rs.standbys {
		st := StandbyStatus{ID: s.id, Misses: s.misses, Crashed: s.crashed, Promoted: s.promoted}
		if s.mirror != nil {
			st.Epoch = s.mirror.Epoch
		}
		out = append(out, st)
	}
	return out
}

// Promoted reports whether a standby from this set has taken over.
func (rs *ReplicaSet) Promoted() bool {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.promoted
}

// CrashStandby marks a standby as dead: it stops tailing, stops
// heartbeating, and is skipped by elections — the failover matrix's
// standby-outage axis.
func (rs *ReplicaSet) CrashStandby(id int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for _, s := range rs.standbys {
		if s.id == id {
			s.crashed = true
			rs.opt.Log.Addf("replica %d crashed", id)
			return nil
		}
	}
	return fmt.Errorf("wan: no standby %d", id)
}

// live returns the non-crashed, non-promoted standbys in id order.
func (rs *ReplicaSet) live() []*Standby {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var out []*Standby
	for _, s := range rs.standbys {
		if !s.crashed && !s.promoted {
			out = append(out, s)
		}
	}
	return out
}

// Tick advances the replica set by one deterministic step: every live
// standby tails the journal into its mirror, then heartbeats the lease,
// and if any standby's consecutive misses have reached the threshold the
// lowest such replica runs an election and tries to promote itself. Tick
// returns the Promotion on success, (nil, nil) while the leader looks
// alive, and ErrPromotionBlocked (wrapped) when an election fired but the
// state directory is still flock-held — the zombie-leader case; the caller
// keeps ticking and the claim is retried once the lock dies.
func (rs *ReplicaSet) Tick() (*Promotion, error) {
	if rs.Promoted() {
		return nil, nil
	}
	rs.opt.Metrics.Counter("wan.election.ticks").Inc()
	live := rs.live()
	for _, s := range live {
		rs.tailStandby(s)
	}
	for _, s := range live {
		rs.heartbeatStandby(s)
	}
	for _, s := range live {
		rs.mu.Lock()
		ready := s.misses >= rs.opt.MissThreshold && !s.crashed && !s.promoted
		misses := s.misses
		rs.mu.Unlock()
		if !ready {
			continue
		}
		rs.opt.Metrics.Counter("wan.election.elections").Inc()
		rs.opt.Log.Addf("election replica=%d misses=%d", s.id, misses)
		return rs.Promote(s.id)
	}
	return nil, nil
}

// tailStandby drains the journal into the standby's mirror.
func (rs *ReplicaSet) tailStandby(s *Standby) {
	recs, err := s.rd.Tail()
	if err != nil {
		rs.opt.Metrics.Counter("wan.replica.tail_errors").Inc()
		rs.opt.Log.Addf("replica %d tail error", s.id)
		return
	}
	var latest *EpochState
	for _, r := range recs {
		st, derr := decodeEpochState(r.Payload)
		if derr != nil {
			rs.opt.Metrics.Counter("wan.replica.decode_errors").Inc()
			continue
		}
		latest = st
	}
	if latest == nil {
		return
	}
	rs.mu.Lock()
	s.mirror = latest
	rs.mu.Unlock()
	rs.opt.Metrics.Counter("wan.replica.mirror_updates").Inc()
	rs.opt.Log.Addf("replica %d mirror epoch=%d", s.id, latest.Epoch)
}

// heartbeatStandby runs one liveness probe against the lease.
func (rs *ReplicaSet) heartbeatStandby(s *Standby) {
	rs.opt.Metrics.Counter("wan.election.heartbeats").Inc()
	resp, err := s.hb.RoundTrip(&Request{Type: MsgPing}, rs.opt.HeartbeatTimeout)
	ok := err == nil && resp != nil && resp.OK
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if !ok {
		s.misses++
		rs.opt.Metrics.Counter("wan.election.misses").Inc()
		rs.opt.Log.Addf("replica %d heartbeat miss n=%d", s.id, s.misses)
		return
	}
	if s.misses != 0 {
		rs.opt.Log.Addf("replica %d heartbeat recovered", s.id)
		s.misses = 0
	}
}

// Promote hands the fleet to standby id: a final journal drain, then a
// full Store open of the shared directory (taking the flock and bumping
// the generation — this is the fencing step: from here on, agents reject
// the dead leader's RPCs as Stale), an audit of the tailed mirror against
// the durably recovered state, and a fleet-wide re-assert of the recovered
// last-good rate table under the new generation. Concurrent promotions are
// safe: the flock admits exactly one winner, and losers fail typed with
// ErrPromotionBlocked.
func (rs *ReplicaSet) Promote(id int) (*Promotion, error) {
	var s *Standby
	rs.mu.Lock()
	for _, cand := range rs.standbys {
		if cand.id == id {
			s = cand
		}
	}
	switch {
	case s == nil:
		rs.mu.Unlock()
		return nil, fmt.Errorf("wan: no standby %d", id)
	case s.crashed:
		rs.mu.Unlock()
		return nil, fmt.Errorf("wan: standby %d is crashed", id)
	case rs.promoted:
		rs.mu.Unlock()
		return nil, fmt.Errorf("wan: replica %d: a sibling already leads: %w", id, ErrPromotionBlocked)
	}
	rs.mu.Unlock()

	start := time.Now()
	ctl, err := NewControllerTransport(rs.opt.Transport, rs.agents)
	if err != nil {
		return nil, fmt.Errorf("wan: promote replica %d: %w", id, err)
	}
	ctl.Metrics = rs.opt.Metrics
	ctl.Log = rs.opt.Log
	if rs.opt.Timeout > 0 {
		ctl.Timeout = rs.opt.Timeout
	}
	if rs.opt.Retry.MaxAttempts > 0 {
		ctl.Retry = rs.opt.Retry
	}
	rs.tailStandby(s) // final drain: anything journaled since the last tick
	rec, err := ctl.OpenState(rs.dir)
	if err != nil {
		ctl.Close()
		var lockErr *persist.LockError
		if errors.As(err, &lockErr) {
			rs.opt.Metrics.Counter("wan.failover.lock_blocked").Inc()
			rs.opt.Log.Addf("promotion blocked replica=%d", id)
			return nil, fmt.Errorf("wan: replica %d: state dir held by a live leader: %w", id, ErrPromotionBlocked)
		}
		return nil, fmt.Errorf("wan: promote replica %d: %w", id, err)
	}

	p := &Promotion{StandbyID: id, Ctl: ctl, Recovery: rec}
	rs.mu.Lock()
	if rs.promoted {
		// A sibling won between our check and our open. Cannot happen while
		// the flock is honored, but stay defensive: back out completely.
		rs.mu.Unlock()
		ctl.Close()
		return nil, fmt.Errorf("wan: replica %d: a sibling already leads: %w", id, ErrPromotionBlocked)
	}
	rs.promoted = true
	s.promoted = true
	mirror := s.mirror
	rs.mu.Unlock()

	p.MirrorMatch = reflect.DeepEqual(mirror, rec.State)
	if p.MirrorMatch {
		rs.opt.Metrics.Counter("wan.failover.mirror_match").Inc()
	} else {
		rs.opt.Metrics.Counter("wan.failover.mirror_mismatch").Inc()
	}
	rs.opt.Log.Addf("promotion replica=%d gen=%d warm=%v mirror_match=%v",
		id, rec.Generation, rec.Warm, p.MirrorMatch)

	// Re-assert the last good plan fleet-wide under the new generation: the
	// agents may hold rates pushed by the dead leader after its last journal
	// entry, and the promoted controller must converge them back onto the
	// last durable plan (per-RPC retries apply; a failed re-assert leaves
	// each agent's installed table in place, which still routes traffic).
	if last := ctl.LastGoodRates(); last != nil {
		if _, uerr := ctl.UpdateRates(last); uerr != nil {
			p.Degraded = true
			rs.opt.Metrics.Counter("wan.failover.reassert_errors").Inc()
			rs.opt.Log.Addf("failover reassert failed replica=%d", id)
		} else {
			p.Reasserted = true
			rs.opt.Metrics.Counter("wan.failover.reasserts").Inc()
			rs.opt.Log.Addf("failover reassert replica=%d epoch=%d", id, rec.Epoch)
		}
	}
	p.Elapsed = time.Since(start)
	rs.opt.Metrics.Counter("wan.failover.promotions").Inc()
	rs.opt.Metrics.Timer("wan.failover.time").Observe(p.Elapsed)
	return p, nil
}

// Close tears down every standby's reader and heartbeat connection. A
// promoted controller is NOT closed — its ownership passed to the caller
// with the Promotion. Idempotent.
func (rs *ReplicaSet) Close() error {
	rs.mu.Lock()
	standbys := rs.standbys
	rs.standbys = nil
	rs.mu.Unlock()
	var first error
	for _, s := range standbys {
		if s.rd != nil {
			if err := s.rd.Close(); err != nil && first == nil {
				first = err
			}
		}
		if s.hb != nil {
			if err := s.hb.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
