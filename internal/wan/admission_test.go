package wan

import (
	"crypto/sha256"
	"os"
	"reflect"
	"strings"
	"testing"

	"prete/internal/core"
	"prete/internal/obs"
	"prete/internal/te"
)

// fakeClassed builds a ClassedResult with the given per-tier offered
// demand and loss bound, for driving the admission stage directly.
func fakeClassed(spec *te.ClassSpec, offered, phis []float64) *core.ClassedResult {
	cr := &core.ClassedResult{Alloc: make(te.Allocation)}
	for k, tier := range spec.Tiers {
		cr.Tiers = append(cr.Tiers, core.TierResult{
			Name: tier.Name, Policy: tier.Policy, Weight: tier.Weight,
			Offered: offered[k], Res: &core.Result{Phi: phis[k]}, ExpectedLoss: phis[k],
		})
	}
	return cr
}

func TestAdmissionCleanEpoch(t *testing.T) {
	spec := te.DefaultClassSpec()
	a := NewAdmission(spec, nil, nil)
	dec := a.Decide(fakeClassed(spec, []float64{20, 50, 30}, []float64{0.5, 0.5, 0.5}), false)
	if err := dec.Check(); err != nil {
		t.Fatal(err)
	}
	for _, td := range dec.Tiers {
		if td.Rung != "clean" || td.Admitted != td.Offered || td.Shed != 0 || td.Deferred != 0 {
			t.Errorf("clean epoch tier %s: %+v", td.Tier, td)
		}
	}
	if dec.Tick != 1 || dec.Degraded {
		t.Errorf("tick/degraded wrong: %+v", dec)
	}
}

func TestAdmissionLadderRungs(t *testing.T) {
	spec := te.DefaultClassSpec() // lc:protect, std:defer, bulk:shed
	a := NewAdmission(spec, obs.NewRegistry(), NewEventLog())
	cr := fakeClassed(spec, []float64{20, 50, 30}, []float64{0.5, 0.2, 0.4})
	dec := a.Decide(cr, true)
	if err := dec.Check(); err != nil {
		t.Fatal(err)
	}
	lc, std, bulk := dec.Tiers[0], dec.Tiers[1], dec.Tiers[2]
	if lc.Rung != "protect" || lc.Admitted != 20 || lc.Shed != 0 || lc.Deferred != 0 {
		t.Errorf("protect tier: %+v", lc)
	}
	if std.Rung != "defer" || std.Admitted != 0.8*50 || std.Deferred != 50-0.8*50 || std.Shed != 0 {
		t.Errorf("defer tier: %+v", std)
	}
	if bulk.Rung != "shed" || bulk.Admitted != 0.6*30 || bulk.Shed != 30-0.6*30 || bulk.Deferred != 0 {
		t.Errorf("shed tier: %+v", bulk)
	}

	// Deferred backlog is re-offered next epoch on top of the base demand.
	dec2 := a.Decide(cr, true)
	if err := dec2.Check(); err != nil {
		t.Fatal(err)
	}
	std2 := dec2.Tiers[1]
	if std2.Offered != 50+std.Deferred {
		t.Errorf("backlog not re-offered: offered %v, want %v", std2.Offered, 50+std.Deferred)
	}
	if std2.Deferred != std2.Offered-std2.Admitted {
		t.Errorf("second-epoch defer accounting: %+v", std2)
	}

	// A clean epoch drains the backlog completely.
	dec3 := a.Decide(cr, false)
	std3 := dec3.Tiers[1]
	if std3.Rung != "clean" || std3.Admitted != std3.Offered || std3.Deferred != 0 {
		t.Errorf("backlog not drained on clean epoch: %+v", std3)
	}
	dec4 := a.Decide(cr, true)
	if dec4.Tiers[1].Offered != 50 {
		t.Errorf("backlog leaked across clean epoch: offered %v", dec4.Tiers[1].Offered)
	}
}

func TestAdmissionLastGood(t *testing.T) {
	spec := te.DefaultClassSpec()
	a := NewAdmission(spec, nil, nil)
	if dec := a.DecideLastGood(); dec != nil {
		t.Fatalf("last-good before any decision should be nil, got %+v", dec)
	}
	cr := fakeClassed(spec, []float64{20, 50, 30}, []float64{0, 0.2, 0.4})
	first := a.Decide(cr, true)
	replay := a.DecideLastGood()
	if replay == nil || !replay.LastGood || replay.Tick != first.Tick+1 {
		t.Fatalf("last-good replay: %+v", replay)
	}
	if err := replay.Check(); err != nil {
		t.Fatal(err)
	}
	for k, td := range replay.Tiers {
		want := first.Tiers[k]
		if td.Rung != "last-good" || td.Offered != want.Offered || td.Admitted != want.Admitted ||
			td.Shed != want.Shed || td.Deferred != want.Deferred {
			t.Errorf("tier %s replay diverges: %+v vs %+v", td.Tier, td, want)
		}
	}
	if got := a.Last(); got != first {
		t.Errorf("Last() should keep the real decision, got %+v", got)
	}
}

func TestAdmissionCheckCatchesCorruption(t *testing.T) {
	dec := &AdmissionDecision{Tiers: []TierDecision{
		{Tier: "x", Offered: 10, Admitted: 5, Shed: 4, Deferred: 0},
	}}
	if err := dec.Check(); err == nil {
		t.Fatal("Check passed a decision missing 1 Gbps")
	}
	dec.Tiers[0].Shed = 5
	if err := dec.Check(); err != nil {
		t.Fatalf("exact decision rejected: %v", err)
	}
	dec.Tiers[0].Admitted, dec.Tiers[0].Shed = 11, -1
	if err := dec.Check(); err == nil {
		t.Fatal("Check passed a negative component")
	}
}

// TestClassesDisabledByteIdentity pins the acceptance invariant: a testbed
// with Classes set to the single default tier produces byte-identical
// events, agent rates, counter/gauge metrics, and state-directory contents
// to a classless run.
func TestClassesDisabledByteIdentity(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func(spec *te.ClassSpec) (events []string, rates []map[string]float64,
		counters map[string]int64, gauges map[string]float64, files map[string][32]byte) {
		dir := t.TempDir()
		tb := newStateTestbed(t)
		tb.Classes = spec
		if _, err := tb.OpenState(dir); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := tb.RunScenario(7); err != nil {
				t.Fatal(err)
			}
		}
		for _, a := range tb.Agents {
			rates = append(rates, a.Rates())
		}
		snap := tb.Ctl.Metrics.Snapshot()
		names, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		files = make(map[string][32]byte, len(names))
		for _, de := range names {
			b, err := os.ReadFile(dir + "/" + de.Name())
			if err != nil {
				t.Fatal(err)
			}
			files[de.Name()] = sha256.Sum256(b)
		}
		return tb.Ctl.Log.Events(), rates, snap.Counters, snap.Gauges, files
	}

	plainEvents, plainRates, plainCounters, plainGauges, plainFiles := run(nil)
	uniEvents, uniRates, uniCounters, uniGauges, uniFiles := run(te.UniformClassSpec())
	if !reflect.DeepEqual(uniEvents, plainEvents) {
		t.Errorf("events diverged with a disabled class spec:\n with: %v\n want: %v", uniEvents, plainEvents)
	}
	if !reflect.DeepEqual(uniRates, plainRates) {
		t.Errorf("agent rates diverged: %v vs %v", uniRates, plainRates)
	}
	if !reflect.DeepEqual(uniCounters, plainCounters) {
		t.Errorf("counters diverged: %v vs %v", uniCounters, plainCounters)
	}
	if !reflect.DeepEqual(uniGauges, plainGauges) {
		t.Errorf("gauges diverged: %v vs %v", uniGauges, plainGauges)
	}
	if !reflect.DeepEqual(uniFiles, plainFiles) {
		t.Errorf("state-dir hashes diverged: %v vs %v", uniFiles, plainFiles)
	}
	for _, ev := range uniEvents {
		if strings.HasPrefix(ev, "admission ") {
			t.Errorf("disabled classes emitted an admission event: %q", ev)
		}
	}
}

// TestClassedReactionRound runs the full reaction pipeline with the
// default three-tier spec: the round must produce a checked admission
// decision, per-tier event lines, and replay bit-identically.
func TestClassedReactionRound(t *testing.T) {
	checkGoroutineLeaks(t)
	run := func() ([]string, *AdmissionDecision) {
		tb := newStateTestbed(t)
		tb.Classes = te.DefaultClassSpec()
		if _, err := tb.RunScenario(7); err != nil {
			t.Fatal(err)
		}
		return tb.Ctl.Log.Events(), tb.LastAdmission()
	}
	events, dec := run()
	if dec == nil {
		t.Fatal("no admission decision after a classed reaction round")
	}
	if err := dec.Check(); err != nil {
		t.Fatal(err)
	}
	if len(dec.Tiers) != 3 || !dec.Degraded {
		t.Fatalf("decision shape: %+v", dec)
	}
	// The protected tier is never shed or deferred.
	if lc := dec.Tiers[0]; lc.Shed != 0 || lc.Deferred != 0 || lc.Admitted != lc.Offered {
		t.Errorf("protected tier rejected traffic: %+v", lc)
	}
	var admissionLines int
	for _, ev := range events {
		if strings.HasPrefix(ev, "admission tier=") {
			admissionLines++
		}
	}
	if admissionLines != 3 {
		t.Errorf("got %d admission event lines, want 3:\n%v", admissionLines, events)
	}
	events2, dec2 := run()
	if !reflect.DeepEqual(events2, events) {
		t.Errorf("classed reaction replay diverged:\n run1 %v\n run2 %v", events, events2)
	}
	if !reflect.DeepEqual(dec2, dec) {
		t.Errorf("admission decision replay diverged: %+v vs %+v", dec2, dec)
	}
}
