package prete

// Cross-epoch incremental-solve benchmarks: what the core.SolveCache saves
// when successive TE epochs repeat (quiet network) or drift only in their
// scenario probabilities. The cold sub-benchmark is the per-epoch price
// without the cache; quiet is an unchanged-epoch re-solve served from the
// cache (the >= 5x acceptance bar — in practice it is orders of
// magnitude); probdrift alternates between two probability-drifted
// scenario sets so every op is a cut-pool revalidation re-solve. The quiet
// run also reports warm-speedup-x: the measured cold-solve time over the
// per-op warm time. Sub-benchmark names stay hyphen-free so
// prete-benchdiff's GOMAXPROCS-suffix stripping cannot mangle them on
// single-core runners.

import (
	"testing"
	"time"

	"prete/internal/core"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

func BenchmarkSolveIncremental(b *testing.B) {
	in := anytimeInput(b, "B4")

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.DefaultOptimizer().Solve(in); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("quiet", func(b *testing.B) {
		o := core.DefaultOptimizer()
		cache := &core.SolveCache{}
		coldStart := time.Now()
		if err := o.Prime(in, cache); err != nil {
			b.Fatal(err)
		}
		cold := time.Since(coldStart)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := o.SolveCached(in, cache); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := cache.Stats(); st.Hits != uint64(b.N) {
			b.Fatalf("cache stats %+v, want %d hits", st, b.N)
		}
		perOp := b.Elapsed() / time.Duration(b.N)
		if perOp > 0 {
			b.ReportMetric(float64(cold)/float64(perOp), "warm-speedup-x")
		}
	})

	b.Run("probdrift", func(b *testing.B) {
		// Two inputs over the same scenario structure with slightly drifted
		// probabilities: alternating between them makes every op a
		// probability-only revalidation (cut pool reused, master re-solved).
		drifted := driftedInput(b, in)
		o := core.DefaultOptimizer()
		cache := &core.SolveCache{}
		if err := o.Prime(in, cache); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next := in
			if i%2 == 0 {
				next = drifted
			}
			if _, err := o.SolveCached(next, cache); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if st := cache.Stats(); st.Revalidations != uint64(b.N) {
			b.Fatalf("cache stats %+v, want %d revalidations", st, b.N)
		}
	})
}

// driftedInput rebuilds in's scenario set from the same options after a
// tiny uniform relative drift of every scenario probability's source — here
// approximated by rescaling the set's probabilities through re-enumeration
// on a perturbed vector. The structure (which fibers can fail together)
// must be unchanged so the delta classifies as probability-only.
func driftedInput(b *testing.B, in *te.Input) *te.Input {
	b.Helper()
	// anytimeInput enumerated from seeded probabilities; reconstruct them
	// the same way (same seed, probs are the stream's first draws) and
	// nudge each one by 0.1% relative.
	net, err := topology.ByName("B4")
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(2025)
	probs := make([]float64, len(net.Fibers))
	for i := range probs {
		probs[i] = (0.001 + 0.02*rng.Float64()) * 1.001
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 200})
	if err != nil {
		b.Fatal(err)
	}
	if in.Scenarios.Diff(set).Class != scenario.DeltaProbOnly {
		b.Fatal("drifted input is not a probability-only delta")
	}
	out := *in
	out.Scenarios = set
	return &out
}

// TestQuietResolveSpeedup pins the ISSUE's acceptance bar outside the bench
// harness: an unchanged-epoch cached re-solve must be at least 5x faster
// than the cold solve (measured: orders of magnitude, so the margin is
// wide enough for a loaded CI machine).
func TestQuietResolveSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement; skipped in -short mode")
	}
	in := anytimeInput(t, "B4")
	o := core.DefaultOptimizer()
	cache := &core.SolveCache{}
	coldStart := time.Now()
	if err := o.Prime(in, cache); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	const reps = 10
	warmStart := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := o.SolveCached(in, cache); err != nil {
			t.Fatal(err)
		}
	}
	warm := time.Since(warmStart) / reps
	if warm*5 > cold {
		t.Errorf("quiet cached re-solve %v vs cold %v: speedup %.1fx < 5x",
			warm, cold, float64(cold)/float64(warm))
	}
}
