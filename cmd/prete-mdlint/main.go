// Command prete-mdlint checks the repository's markdown files for broken
// relative links: every `[text](target)` whose target is not an external
// URL (http/https/mailto) or a pure in-page anchor must resolve to an
// existing file or directory relative to the markdown file. Fragments are
// stripped before the existence check (`FILE.md#section` checks FILE.md);
// link targets inside fenced code blocks are ignored. Exit status 1 means
// broken links were printed.
//
// Usage:
//
//	prete-mdlint [dir ...]   (default: .)
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links, non-greedily, skipping images'
// leading bang via the capture of the target only.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: prete-mdlint [dir ...]   (default: .)")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	broken := 0
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "vendor" || name == "node_modules") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(strings.ToLower(path), ".md") {
				broken += lintFile(path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-mdlint: %v\n", err)
			os.Exit(2)
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "prete-mdlint: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// lintFile reports every broken relative link in one markdown file.
func lintFile(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-mdlint: %v\n", err)
		return 1
	}
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %s (%s does not exist)\n", path, i+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken
}

// skipTarget reports link targets the checker does not validate: external
// URLs and pure in-page anchors.
func skipTarget(t string) bool {
	return strings.HasPrefix(t, "http://") || strings.HasPrefix(t, "https://") ||
		strings.HasPrefix(t, "mailto:") || strings.HasPrefix(t, "#")
}
