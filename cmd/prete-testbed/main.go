// Command prete-testbed reproduces the §5 production-level testbed on
// loopback TCP: three switch agents, a VOA-scripted fiber event
// (healthy 0-65 s, degraded 65-110 s, cut at 110 s), and the full PreTE
// reaction pipeline, printing the Fig 11 latency breakdown.
//
//	prete-testbed            # production-like switch latencies (~250 ms/tunnel)
//	prete-testbed -fast      # millisecond-scale latencies for CI
//	prete-testbed -fast -metrics           # JSON metrics snapshot after the run
//	prete-testbed -debug-addr 127.0.0.1:0  # live /metrics + pprof while running
//	prete-testbed -fast -faults 'seed=7,drop=0.1,delay=1:50ms'  # chaos run
//	prete-testbed -fast -budget 60          # anytime TE solve: 60 work units
//	prete-testbed -budget 5000:150ms        # units + wall-clock safety net
//	prete-testbed -fast -state-dir /tmp/st -replicas 3  # leader + 2 journal-tailing standbys
//	prete-testbed -fast -state-dir /tmp/st -sites 2     # + 2 cross-site replicas fed over the network
//
// The -faults spec injects deterministic controller<->agent RPC faults
// (drop, delay, duplicate, corrupt, partition, crash); see internal/fault
// for the full syntax. Identical -seed and -faults values replay the run
// bit-identically. The -budget spec bounds each TE solve (UNITS[:TIMEOUT],
// see core.ParseBudget); an expired budget installs the best anytime plan
// instead of blowing the TE period.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"prete/internal/core"
	"prete/internal/fault"
	"prete/internal/ingest"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/par"
	"prete/internal/te"
	"prete/internal/wan"
)

func main() {
	var (
		fast         = flag.Bool("fast", false, "millisecond-scale switch latencies")
		seed         = flag.Uint64("seed", 2025, "random seed")
		metrics      = flag.Bool("metrics", false, "print a JSON metrics snapshot after the run")
		debugAddr    = flag.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
		faults       = flag.String("faults", "", "fault-injection spec, e.g. 'seed=7,drop=0.1,delay=0.5:10ms-50ms,crash=0.01:25' (empty = no faults)")
		budget       = flag.String("budget", "", "TE solve budget 'UNITS[:TIMEOUT]', e.g. '5000', '5000:150ms', ':2s' (empty = unlimited); units are deterministic, the timeout is a wall-clock safety net")
		stateDir     = flag.String("state-dir", "", "directory for crash-safe controller state (journaled snapshots); restarting with the same directory warm-restarts from the last journaled epoch (empty = stateless)")
		ingestRate   = flag.Int("ingest-rate", 0, "feed the VOA script through the streaming ingest pipeline at this many samples per tick (0 = classic batch detector path)")
		ingestShards = flag.Int("ingest-shards", 0, "ingest worker shard count when -ingest-rate is set (0 = default)")
		replicas     = flag.Int("replicas", 1, "controller incarnations: 1 = the classic single controller; N > 1 additionally runs N-1 hot standbys that tail the -state-dir journal and would promote on leader death (requires -state-dir)")
		sites        = flag.Int("sites", 0, "cross-site standby sites: each owns its own state directory under <state-dir>/sites/, fed by journal replication over the network, and would promote behind a time-bounded lease on leader death (requires -state-dir)")
		classes      = flag.String("classes", "", "SLO tier spec 'name:share:weight[:policy],...' or 'default' (lc:0.2:100:protect,std:0.5:10:defer,bulk:0.3:1:shed); per-class demands run the strict-priority classed solve and the predictive admission ladder (empty = classless)")
	)
	flag.Parse()

	classSpec, err := te.ParseClassSpec(*classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: -classes: %v\n", err)
		os.Exit(2)
	}

	if *replicas < 1 {
		fmt.Fprintln(os.Stderr, "prete-testbed: -replicas must be >= 1")
		os.Exit(2)
	}
	if *replicas > 1 && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "prete-testbed: -replicas > 1 requires -state-dir (standbys tail the shared journal)")
		os.Exit(2)
	}
	if *sites < 0 {
		fmt.Fprintln(os.Stderr, "prete-testbed: -sites must be >= 0")
		os.Exit(2)
	}
	if *sites > 0 && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "prete-testbed: -sites requires -state-dir (the replicated journal lives there)")
		os.Exit(2)
	}

	faultSpec, err := fault.ParseSpec(*faults)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: -faults: %v\n", err)
		os.Exit(2)
	}
	solveUnits, solveTimeout, err := core.ParseBudget(*budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: -budget: %v\n", err)
		os.Exit(2)
	}

	var reg *obs.Registry
	if *metrics || *debugAddr != "" || faultSpec.Active() {
		reg = obs.NewRegistry()
		reg.PublishExpvar("prete-testbed")
		par.SetMetrics(reg)
	}
	if *debugAddr != "" {
		addr, closeFn, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: debug server: %v\n", err)
			os.Exit(1)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "prete-testbed: debug server on http://%s/metrics\n", addr)
	}

	cfg := wan.DefaultSwitchConfig()
	if *fast {
		cfg.InstallLatency = 3 * time.Millisecond
		cfg.RateLatency = 300 * time.Microsecond
	}
	// A fixed high prediction stands in for the trained NN here; run
	// examples/testbed for the version wired to a trained model.
	predict := func(f optical.Features) float64 { return 0.8 }
	var tr wan.Transport = wan.TCPTransport{}
	var inj *fault.Injector
	if faultSpec.Active() {
		inj, err = fault.NewInjector(faultSpec, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
			os.Exit(1)
		}
		tr = fault.NewTransport(tr, inj)
		fmt.Printf("fault injection: %s\n", faultSpec)
	}
	tb, err := wan.NewTestbedTransport(cfg, predict, tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
		os.Exit(1)
	}
	defer tb.Close()
	tb.SolveUnits = solveUnits
	tb.SolveTimeout = solveTimeout
	tb.Classes = classSpec
	if classSpec.Enabled() {
		fmt.Printf("SLO classes: %s\n", classSpec)
	}
	if *budget != "" {
		fmt.Printf("TE solve budget: %s\n", *budget)
	}
	// RPC counters and latency from the controller's round trips.
	tb.Ctl.Metrics = reg
	tb.Ctl.Log = wan.NewEventLog()

	if *stateDir != "" {
		rec, err := tb.OpenState(*stateDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: -state-dir: %v\n", err)
			os.Exit(1)
		}
		if rec.Warm {
			fmt.Printf("controller state: warm restart from epoch %d (gen %d, %d records, %.2f ms; last-good plan re-asserted)\n",
				rec.Epoch, rec.Generation, rec.RecordsReplayed, ms(rec.Elapsed))
		} else {
			fmt.Printf("controller state: cold start (gen %d)\n", rec.Generation)
		}
	}

	// Hot standbys: a lease endpoint for failure detection plus N-1 replicas
	// tailing the shared journal. In a quiet run they are a read-only side
	// channel — the leader's behaviour and state bytes are untouched.
	var rs *wan.ReplicaSet
	if *replicas > 1 {
		lease, err := wan.NewLeaseServer(tb.Ctl.Generation)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: lease: %v\n", err)
			os.Exit(1)
		}
		defer lease.Close()
		agents := make(map[string]string, len(tb.Agents))
		for _, a := range tb.Agents {
			agents[a.Name] = a.Addr()
		}
		rs, err = wan.NewReplicaSet(*stateDir, lease.Addr(), agents, wan.ReplicaOptions{
			Standbys: *replicas - 1,
			Metrics:  reg,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: -replicas: %v\n", err)
			os.Exit(1)
		}
		defer rs.Close()
		fmt.Printf("controller replication: leader + %d hot standby(s) tailing %s\n", *replicas-1, *stateDir)
	}

	// Cross-site standbys: each site applies the leader's journal stream
	// into its own directory under <state-dir>/sites/ and renews a
	// time-bounded lease; on leader death the lowest site would promote from
	// its own replica, fenced one generation above everything its lease saw.
	var siteSet *wan.SiteSet
	if *sites > 0 {
		siteLease, err := wan.NewLeaseServer(tb.Ctl.Generation)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: site lease: %v\n", err)
			os.Exit(1)
		}
		defer siteLease.Close()
		agents := make(map[string]string, len(tb.Agents))
		for _, a := range tb.Agents {
			agents[a.Name] = a.Addr()
		}
		siteSet, err = wan.NewSiteSet(*stateDir, filepath.Join(*stateDir, "sites"), siteLease.Addr(), agents, wan.SiteOptions{
			Sites:   *sites,
			Metrics: reg,
			Log:     tb.Ctl.Log,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: -sites: %v\n", err)
			os.Exit(1)
		}
		defer siteSet.Close()
		fmt.Printf("cross-site replication: leader + %d standby site(s) under %s\n", *sites, filepath.Join(*stateDir, "sites"))
	}

	var timing *wan.PipelineTiming
	if *ingestRate > 0 {
		var st ingest.Stats
		timing, st, err = tb.RunScenarioStream(*seed, *ingestShards, *ingestRate)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("streaming ingest: %d samples/tick, %d ingested = %d emitted + %d dropped + %d merged + %d queued (%d watermark crossings)\n",
			*ingestRate, st.Ingested, st.Emitted, st.Dropped, st.Merged, st.Queued, st.WatermarkCrossings)
	} else {
		timing, err = tb.RunScenario(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println("PreTE reaction pipeline (Fig 11a):")
	fmt.Printf("  detection        %8.2f ms\n", ms(timing.Detection))
	fmt.Printf("  model inference  %8.2f ms\n", ms(timing.Inference))
	fmt.Printf("  tunnel update    %8.2f ms\n", ms(timing.TunnelUpdate))
	fmt.Printf("  scenario regen   %8.2f ms\n", ms(timing.ScenarioRegen))
	fmt.Printf("  TE compute       %8.2f ms", ms(timing.TECompute))
	if timing.SolveTruncated {
		fmt.Print("  (budget expired: anytime plan installed)")
	}
	fmt.Println()
	fmt.Printf("  rate install     %8.2f ms\n", ms(timing.RateInstall))
	fmt.Printf("  total            %8.2f ms\n", ms(timing.Total()))
	if inj != nil {
		fmt.Println("\nControl-plane degradation:")
		fmt.Printf("  faults injected  %8d (of %d faultable RPCs)\n",
			reg.Counter("fault.rpcs").Value()-noneCount(inj), reg.Counter("fault.rpcs").Value())
		fmt.Printf("  rpc retries      %8d\n", reg.Counter("wan.rpc.retries").Value())
		fmt.Printf("  rpc give-ups     %8d\n", reg.Counter("wan.rpc.giveups").Value())
		fmt.Printf("  fallback rounds  %8d (rates) / %d (tunnels)\n",
			reg.Counter("wan.fallback.rounds").Value(),
			reg.Counter("wan.fallback.tunnel_rounds").Value())
		if timing.Degraded {
			fmt.Println("  plan: DEGRADED — last good plan kept where the fresh one could not be installed")
		} else {
			fmt.Println("  plan: fresh plan fully installed despite injected faults")
		}
	}

	if dec := tb.LastAdmission(); dec != nil {
		fmt.Println("\nSLO-class admission (predictive ladder):")
		for _, td := range dec.Tiers {
			fmt.Printf("  %-6s %-9s offered %7.1f  admitted %7.1f  shed %7.1f  deferred %7.1f\n",
				td.Tier, td.Rung, td.Offered, td.Admitted, td.Shed, td.Deferred)
		}
	}

	if rs != nil {
		if _, err := rs.Tick(); err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: replica tick: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nStandby journal mirrors:")
		for _, st := range rs.Status() {
			warm := "cold"
			if st.Epoch > 0 {
				warm = fmt.Sprintf("warm @ epoch %d", st.Epoch)
			}
			fmt.Printf("  replica %d  %s (heartbeat misses: %d)\n", st.ID, warm, st.Misses)
		}
	}

	if siteSet != nil {
		if _, err := siteSet.Tick(); err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: site tick: %v\n", err)
			os.Exit(1)
		}
		rs := siteSet.ReplStats()
		fmt.Println("\nCross-site replica mirrors:")
		for _, st := range siteSet.Status() {
			warm := "cold"
			if st.Epoch > 0 {
				warm = fmt.Sprintf("warm @ epoch %d", st.Epoch)
			}
			fmt.Printf("  site %d  %s (applied seq %d, lease %d tick(s) left, %d snapshot re-sync(s))\n",
				st.ID, warm, st.Applied, st.LeaseRemaining, st.Resyncs)
		}
		fmt.Printf("  stream: %d shipped = %d acked + %d in flight (+%d resent)\n",
			rs.Shipped, rs.Acked, rs.Inflight, rs.Resent)
	}

	counts := []int{1, 5, 10, 20}
	scaling, err := wan.MeasureInstallScaling(cfg, counts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nSerialized tunnel installation (Fig 11b):")
	for _, n := range counts {
		fmt.Printf("  %2d tunnels  %8.1f ms\n", n, ms(scaling[n]))
	}

	if *metrics {
		fmt.Println("\n== metrics ==")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// noneCount tallies the injector decisions that left the RPC untouched, so
// the summary can report how many RPCs were actually perturbed.
func noneCount(inj *fault.Injector) int64 {
	var n int64
	for _, e := range inj.History() {
		if strings.HasSuffix(e, ":none") {
			n++
		}
	}
	return n
}
