// Command prete-testbed reproduces the §5 production-level testbed on
// loopback TCP: three switch agents, a VOA-scripted fiber event
// (healthy 0-65 s, degraded 65-110 s, cut at 110 s), and the full PreTE
// reaction pipeline, printing the Fig 11 latency breakdown.
//
//	prete-testbed            # production-like switch latencies (~250 ms/tunnel)
//	prete-testbed -fast      # millisecond-scale latencies for CI
//	prete-testbed -fast -metrics           # JSON metrics snapshot after the run
//	prete-testbed -debug-addr 127.0.0.1:0  # live /metrics + pprof while running
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/par"
	"prete/internal/wan"
)

func main() {
	var (
		fast      = flag.Bool("fast", false, "millisecond-scale switch latencies")
		seed      = flag.Uint64("seed", 2025, "random seed")
		metrics   = flag.Bool("metrics", false, "print a JSON metrics snapshot after the run")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		reg.PublishExpvar("prete-testbed")
		par.SetMetrics(reg)
	}
	if *debugAddr != "" {
		addr, closeFn, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: debug server: %v\n", err)
			os.Exit(1)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "prete-testbed: debug server on http://%s/metrics\n", addr)
	}

	cfg := wan.DefaultSwitchConfig()
	if *fast {
		cfg.InstallLatency = 3 * time.Millisecond
		cfg.RateLatency = 300 * time.Microsecond
	}
	tb, err := wan.NewTestbed(cfg, func(f optical.Features) float64 {
		// A fixed high prediction stands in for the trained NN here; run
		// examples/testbed for the version wired to a trained model.
		return 0.8
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
		os.Exit(1)
	}
	defer tb.Close()
	// RPC counters and latency from the controller's round trips.
	tb.Ctl.Metrics = reg

	timing, err := tb.RunScenario(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("PreTE reaction pipeline (Fig 11a):")
	fmt.Printf("  detection        %8.2f ms\n", ms(timing.Detection))
	fmt.Printf("  model inference  %8.2f ms\n", ms(timing.Inference))
	fmt.Printf("  tunnel update    %8.2f ms\n", ms(timing.TunnelUpdate))
	fmt.Printf("  scenario regen   %8.2f ms\n", ms(timing.ScenarioRegen))
	fmt.Printf("  TE compute       %8.2f ms\n", ms(timing.TECompute))
	fmt.Printf("  rate install     %8.2f ms\n", ms(timing.RateInstall))
	fmt.Printf("  total            %8.2f ms\n", ms(timing.Total()))

	counts := []int{1, 5, 10, 20}
	scaling, err := wan.MeasureInstallScaling(cfg, counts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-testbed: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nSerialized tunnel installation (Fig 11b):")
	for _, n := range counts {
		fmt.Printf("  %2d tunnels  %8.1f ms\n", n, ms(scaling[n]))
	}

	if *metrics {
		fmt.Println("\n== metrics ==")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "prete-testbed: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
