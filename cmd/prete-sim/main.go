// Command prete-sim runs the paper's evaluation experiments. Every table
// and figure of the paper maps to an experiment id (see DESIGN.md §4):
//
//	prete-sim -list
//	prete-sim -exp fig13
//	prete-sim -exp tab5 -seed 7
//	prete-sim -all -quick
//	prete-sim -exp fig8 -quick -metrics     # JSON metrics snapshot on stderr-free stdout
//	prete-sim -exp fig13 -debug-addr :6060  # live /metrics + pprof while running
package main

import (
	"flag"
	"fmt"
	"os"

	"prete/internal/core"
	"prete/internal/experiments"
	"prete/internal/obs"
	"prete/internal/par"
	"prete/internal/te"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id to run (see -list)")
		seed      = flag.Uint64("seed", 2025, "random seed")
		quick     = flag.Bool("quick", false, "reduced fidelity for fast runs")
		list      = flag.Bool("list", false, "list available experiments")
		all       = flag.Bool("all", false, "run every experiment")
		par_      = flag.Int("p", 0, "worker parallelism (0 = GOMAXPROCS, 1 = serial; output is identical)")
		budget    = flag.String("budget", "", "per-solve compute budget in deterministic work units, e.g. -budget 5000 (0/empty = unlimited)")
		metrics   = flag.Bool("metrics", false, "print a JSON metrics snapshot after the run")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
		classes   = flag.String("classes", "", "SLO tier spec for class-aware experiments, 'name:share:weight[:policy],...' or 'default' (empty = the built-in default spec)")
	)
	flag.Parse()

	classSpec, err := te.ParseClassSpec(*classes)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-sim: -classes: %v\n", err)
		os.Exit(2)
	}

	units, timeout, err := core.ParseBudget(*budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-sim: %v\n", err)
		os.Exit(2)
	}
	if timeout > 0 {
		// Experiments promise seed-reproducible output; a wall-clock budget
		// would break that, so only the deterministic units form is allowed.
		fmt.Fprintln(os.Stderr, "prete-sim: -budget UNITS only (wall-clock budgets are nondeterministic; use prete-testbed for those)")
		os.Exit(2)
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	// Experiment output is byte-identical with metrics on or off: the
	// registry is a write-only side channel (see internal/obs).
	var reg *obs.Registry
	if *metrics || *debugAddr != "" {
		reg = obs.NewRegistry()
		reg.PublishExpvar("prete")
		par.SetMetrics(reg)
	}
	if *debugAddr != "" {
		addr, closeFn, err := obs.ServeDebug(*debugAddr, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-sim: debug server: %v\n", err)
			os.Exit(1)
		}
		defer closeFn()
		fmt.Fprintf(os.Stderr, "prete-sim: debug server on http://%s/metrics\n", addr)
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: *par_, Budget: units, Metrics: reg, Classes: classSpec}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if err := experiments.Run(id, os.Stdout, opts); err != nil {
				fmt.Fprintf(os.Stderr, "prete-sim: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "prete-sim: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "prete-sim: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}
	if *metrics {
		fmt.Println("== metrics ==")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "prete-sim: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
