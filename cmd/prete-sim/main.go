// Command prete-sim runs the paper's evaluation experiments. Every table
// and figure of the paper maps to an experiment id (see DESIGN.md §4):
//
//	prete-sim -list
//	prete-sim -exp fig13
//	prete-sim -exp tab5 -seed 7
//	prete-sim -all -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"prete/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id to run (see -list)")
		seed  = flag.Uint64("seed", 2025, "random seed")
		quick = flag.Bool("quick", false, "reduced fidelity for fast runs")
		list  = flag.Bool("list", false, "list available experiments")
		all   = flag.Bool("all", false, "run every experiment")
		par   = flag.Int("p", 0, "worker parallelism (0 = GOMAXPROCS, 1 = serial; output is identical)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return
	}
	opts := experiments.Options{Seed: *seed, Quick: *quick, Parallelism: *par}
	switch {
	case *all:
		for _, id := range experiments.IDs() {
			if err := experiments.Run(id, os.Stdout, opts); err != nil {
				fmt.Fprintf(os.Stderr, "prete-sim: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
	case *exp != "":
		if err := experiments.Run(*exp, os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "prete-sim: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "prete-sim: pass -exp <id>, -all, or -list")
		os.Exit(2)
	}
}
