// Command prete-benchdiff converts `go test -bench` output to a stable
// JSON form and compares two such files, so CI can archive per-commit
// benchmark artifacts and flag regressions against a committed baseline:
//
//	go test -run=NoSuchTest -bench=. -benchtime=1x . > bench.txt
//	prete-benchdiff -convert bench.txt -o BENCH_ci.json
//	prete-benchdiff -diff BENCH_baseline.json BENCH_ci.json
//	prete-benchdiff -diff base.json new.json -fail-over 2.0   # exit 1 on >2x
//
// Timings on shared CI runners are noisy, so -diff only reports by default;
// -fail-over turns ratios above the bound into a failing exit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the anytime solves'
	// tti-ns/op time-to-first-incumbent), keyed by unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// File is the JSON artifact: results sorted by name plus the environment
// lines go test prints (goos/goarch/pkg/cpu), for provenance.
type File struct {
	Env        map[string]string `json:"env,omitempty"`
	Benchmarks []Result          `json:"benchmarks"`
}

// parseBench reads `go test -bench` text output. Unrecognized lines are
// ignored, so piping a whole test log through is fine.
func parseBench(r io.Reader) (*File, error) {
	f := &File{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, env := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, env+": "); ok {
				f.Env[env] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name-N  iterations  value unit  [value unit ...]
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: name, Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				// Custom b.ReportMetric units (tti-ns/op, tti-units, ...).
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[unit] = v
			}
		}
		if res.NsPerOp == 0 {
			continue
		}
		f.Benchmarks = append(f.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool { return f.Benchmarks[i].Name < f.Benchmarks[j].Name })
	return f, nil
}

func readFile(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// diff prints a ratio table and returns the worst current/baseline ratio
// over the benchmarks present in both files.
func diff(w io.Writer, base, cur *File) float64 {
	baseBy := make(map[string]Result, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseBy[r.Name] = r
	}
	worst := 0.0
	fmt.Fprintf(w, "%-36s %14s %14s %8s\n", "benchmark", "base ns/op", "cur ns/op", "ratio")
	for _, r := range cur.Benchmarks {
		b, ok := baseBy[r.Name]
		if !ok || b.NsPerOp == 0 {
			fmt.Fprintf(w, "%-36s %14s %14.0f %8s\n", r.Name, "-", r.NsPerOp, "new")
			continue
		}
		ratio := r.NsPerOp / b.NsPerOp
		if ratio > worst {
			worst = ratio
		}
		fmt.Fprintf(w, "%-36s %14.0f %14.0f %7.2fx\n", r.Name, b.NsPerOp, r.NsPerOp, ratio)
		// Custom units diff as report-only rows: they track the same wall
		// clock as ns/op (or are pure counts), so the ns/op ratio already
		// gates CI and these just provide the named series.
		for _, unit := range sortedKeys(r.Extra) {
			bv, ok := b.Extra[unit]
			if !ok || bv == 0 {
				fmt.Fprintf(w, "%-36s %14s %14.0f %8s\n", r.Name+"["+unit+"]", "-", r.Extra[unit], "new")
				continue
			}
			fmt.Fprintf(w, "%-36s %14.0f %14.0f %7.2fx\n", r.Name+"["+unit+"]", bv, r.Extra[unit], r.Extra[unit]/bv)
		}
		delete(baseBy, r.Name)
	}
	for name := range baseBy {
		fmt.Fprintf(w, "%-36s %14s %14s %8s\n", name, "-", "-", "gone")
	}
	return worst
}

func main() {
	var (
		convert  = flag.String("convert", "", "parse `go test -bench` output from this file ('-' for stdin) and emit JSON")
		out      = flag.String("o", "", "output path for -convert (default stdout)")
		doDiff   = flag.Bool("diff", false, "compare two JSON files: prete-benchdiff -diff base.json current.json")
		failOver = flag.Float64("fail-over", 0, "with -diff, exit 1 if any ns/op ratio exceeds this bound (0 disables)")
	)
	flag.Parse()

	switch {
	case *convert != "":
		in := os.Stdin
		if *convert != "-" {
			f, err := os.Open(*convert)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			in = f
		}
		parsed, err := parseBench(in)
		if err != nil {
			fatal(err)
		}
		if len(parsed.Benchmarks) == 0 {
			fatal(fmt.Errorf("no benchmark results in %s", *convert))
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(parsed); err != nil {
			fatal(err)
		}
	case *doDiff:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-diff needs exactly two JSON files, got %d args", flag.NArg()))
		}
		base, err := readFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		cur, err := readFile(flag.Arg(1))
		if err != nil {
			fatal(err)
		}
		worst := diff(os.Stdout, base, cur)
		fmt.Printf("worst ratio: %.2fx\n", worst)
		if *failOver > 0 && worst > *failOver {
			fmt.Fprintf(os.Stderr, "prete-benchdiff: worst ratio %.2fx exceeds -fail-over %.2fx\n", worst, *failOver)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "prete-benchdiff: pass -convert <file> or -diff <base.json> <current.json>")
		os.Exit(2)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prete-benchdiff: %v\n", err)
	os.Exit(1)
}
