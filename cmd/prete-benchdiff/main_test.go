package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: prete
cpu: Intel(R) Xeon(R)
BenchmarkSimplexTE-8         	     120	   9876543 ns/op	  123456 B/op	     789 allocs/op
BenchmarkParallelEvaluate-8  	       1	1234567890 ns/op
BenchmarkDetector-8          	  500000	      2345 ns/op
BenchmarkSolveAnytimeB4-8    	       5	  53992249 ns/op	  53992249 tti-ns/op	       956.0 tti-units
PASS
ok  	prete	12.345s
`

func TestParseBench(t *testing.T) {
	f, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	// Sorted by name, GOMAXPROCS suffix stripped.
	wantNames := []string{"BenchmarkDetector", "BenchmarkParallelEvaluate", "BenchmarkSimplexTE", "BenchmarkSolveAnytimeB4"}
	for i, r := range f.Benchmarks {
		if r.Name != wantNames[i] {
			t.Errorf("benchmark %d = %q, want %q", i, r.Name, wantNames[i])
		}
	}
	s := f.Benchmarks[2]
	if s.Iterations != 120 || s.NsPerOp != 9876543 || s.BytesPerOp != 123456 || s.AllocsPerOp != 789 {
		t.Errorf("SimplexTE parsed wrong: %+v", s)
	}
	if f.Env["goos"] != "linux" || f.Env["pkg"] != "prete" {
		t.Errorf("env lines lost: %+v", f.Env)
	}
	// Custom b.ReportMetric units land in Extra, keyed by unit string.
	a := f.Benchmarks[3]
	if a.Extra["tti-ns/op"] != 53992249 || a.Extra["tti-units"] != 956 {
		t.Errorf("SolveAnytimeB4 extra metrics parsed wrong: %+v", a.Extra)
	}
	if s.Extra != nil {
		t.Errorf("SimplexTE should have no extra metrics: %+v", s.Extra)
	}
}

func TestDiffRatios(t *testing.T) {
	base := &File{Benchmarks: []Result{
		{Name: "BenchmarkA", NsPerOp: 100, Extra: map[string]float64{"tti-ns/op": 10}},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}}
	cur := &File{Benchmarks: []Result{
		// The 4x extra-metric regression is report-only; worst tracks ns/op.
		{Name: "BenchmarkA", NsPerOp: 150, Extra: map[string]float64{"tti-ns/op": 40}},
		{Name: "BenchmarkNew", NsPerOp: 10},
	}}
	var buf bytes.Buffer
	worst := diff(&buf, base, cur)
	if worst != 1.5 {
		t.Errorf("worst ratio = %v, want 1.5", worst)
	}
	out := buf.String()
	for _, want := range []string{"1.50x", "new", "gone", "BenchmarkA[tti-ns/op]", "4.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
}
