// Command prete-doclint enforces the repository's godoc contract without
// external dependencies: every package under the given roots must carry a
// real package comment, and every exported top-level symbol — functions,
// methods on exported receivers, types, and const/var specs — must have a
// doc comment. Test files are exempt, grouped const/var blocks may share
// the block's doc comment, and package comments below a minimum length are
// rejected as placeholders. CI runs it over ./internal and the root
// package; exit status 1 means violations were printed.
//
// Usage:
//
//	prete-doclint [dir ...]   (default: ./internal .)
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// minPackageDoc is the minimum package-comment length (in characters of
// comment text) accepted as "real" — long enough to say what the package
// is, short enough not to demand an essay.
const minPackageDoc = 40

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: prete-doclint [dir ...]   (default: ./internal .)")
		flag.PrintDefaults()
	}
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./internal", "."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dir := filepath.Dir(path)
				if !seen[dir] {
					seen[dir] = true
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "prete-doclint: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)
	violations := 0
	for _, dir := range dirs {
		violations += lintDir(dir)
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "prete-doclint: %d violation(s)\n", violations)
		os.Exit(1)
	}
}

// lintDir parses one package directory (tests excluded) and prints every
// doc-comment violation, returning the count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prete-doclint: %s: %v\n", dir, err)
		return 1
	}
	count := 0
	report := func(pos token.Pos, format string, args ...any) {
		fmt.Printf("%s: %s\n", fset.Position(pos), fmt.Sprintf(format, args...))
		count++
	}
	for _, pkg := range pkgs {
		if !packageDocOK(pkg) {
			// Anchor the report at the alphabetically first file.
			names := make([]string, 0, len(pkg.Files))
			for name := range pkg.Files {
				names = append(names, name)
			}
			sort.Strings(names)
			report(pkg.Files[names[0]].Package,
				"package %s has no real package comment (>= %d chars)", pkg.Name, minPackageDoc)
		}
		for _, name := range sortedFileNames(pkg) {
			lintFile(pkg.Files[name], report)
		}
	}
	return count
}

func sortedFileNames(pkg *ast.Package) []string {
	names := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// packageDocOK accepts the package if any of its files carries a package
// comment of at least minPackageDoc characters.
func packageDocOK(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) >= minPackageDoc {
			return true
		}
	}
	return false
}

// lintFile reports every exported top-level symbol without a doc comment.
func lintFile(f *ast.File, report func(token.Pos, string, ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "exported %s %s lacks a doc comment", funcKind(d), funcName(d))
			}
		case *ast.GenDecl:
			lintGenDecl(d, report)
		}
	}
}

// lintGenDecl checks type, const, and var declarations. Exported specs
// inside a grouped declaration may share the group's doc comment — the
// idiomatic enum/block style — but an undocumented group with undocumented
// exported members is a violation per member.
func lintGenDecl(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil && d.Doc == nil {
				report(s.Pos(), "exported type %s lacks a doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s lacks a doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver base type is
// exported (methods on unexported types are not part of the package API).
// Plain functions trivially pass.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func funcKind(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "function"
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) > 0 {
		if name := receiverTypeName(d.Recv.List[0].Type); name != "" {
			return name + "." + d.Name.Name
		}
	}
	return d.Name.Name
}

func receiverTypeName(t ast.Expr) string {
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
