// Command prete-train generates a synthetic production trace, trains the
// Table 5 model zoo (NN, decision tree, statistic model), and reports
// prediction accuracy:
//
//	prete-train -days 365 -epochs 30
package main

import (
	"flag"
	"fmt"
	"os"

	"prete/internal/ml"
	"prete/internal/topology"
	"prete/internal/trace"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 2025, "random seed")
		days   = flag.Int("days", 365, "trace horizon in days")
		epochs = flag.Int("epochs", 30, "NN training epochs")
	)
	flag.Parse()

	net, err := topology.TWAN(*seed)
	if err != nil {
		fatal(err)
	}
	cfg := trace.DefaultConfig(*seed)
	cfg.Days = *days
	tr, err := trace.Generate(cfg, net)
	if err != nil {
		fatal(err)
	}
	c := tr.Counts()
	fmt.Printf("trace: %d degradations, %d cuts (alpha=%.2f, P(cut|deg)=%.2f)\n",
		c.Degradations, c.Cuts, c.Alpha(), c.PCutGivenDeg())

	train, test, err := tr.Split(0.8)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("split: %d train / %d test episodes\n\n", len(train), len(test))

	nnCfg := ml.DefaultNNConfig(*seed)
	nnCfg.Epochs = *epochs
	nn, err := ml.TrainNN(train, nnCfg)
	if err != nil {
		fatal(err)
	}
	dt, err := ml.TrainDT(train, ml.DefaultDTConfig())
	if err != nil {
		fatal(err)
	}
	st, err := ml.TrainStatistic(train)
	if err != nil {
		fatal(err)
	}

	fmt.Println("model      P     R     F1    Acc   (Table 5)")
	for _, p := range []ml.Predictor{ml.NaiveTeaVar{PI: 0.003}, st, dt, nn} {
		cm := ml.Evaluate(p, test)
		fmt.Printf("%-9s  %.2f  %.2f  %.2f  %.2f\n", p.Name(), cm.Precision(), cm.Recall(), cm.F1(), cm.Accuracy())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "prete-train: %v\n", err)
	os.Exit(1)
}
