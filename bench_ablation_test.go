package prete

// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//   - structural (bottleneck-capacity) cuts seeding the Benders master;
//   - the satisfaction-maximizing polish pass;
//   - failure-equivalence-class merging in FFC (exercised indirectly by
//     comparing FFC-1 against FFC-2, whose row count merging collapses);
//   - Dantzig pricing with the Bland fallback in the simplex (exercised by
//     the degenerate-LP benchmark).
//
// Run with: go test -bench=Ablation -benchmem

import (
	"testing"

	"prete/internal/core"
	"prete/internal/routing"
	"prete/internal/scenario"
	"prete/internal/stats"
	"prete/internal/te"
	"prete/internal/topology"
)

// ablationInput builds a fixed IBM-scale PreTE optimization input with a
// degradation signal (the hardest shape: some classes disconnected).
func ablationInput(b *testing.B) *te.Input {
	b.Helper()
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(7)
	w := stats.Weibull{Shape: 0.8, Scale: 0.002}
	pi := make([]float64, len(net.Fibers))
	for i := range pi {
		pi[i] = 1.6 * w.Sample(rng)
		if pi[i] > 0.05 {
			pi[i] = 0.05
		}
	}
	degraded := map[topology.FiberID]float64{3: 0.5}
	probs, err := scenario.Calibrated(pi, degraded, 0.25)
	if err != nil {
		b.Fatal(err)
	}
	upd, err := core.UpdateTunnels(ts, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	set, err := scenario.Enumerate(probs, scenario.Options{Cutoff: 1e-9, MaxFailures: 2, MaxScenarios: 300})
	if err != nil {
		b.Fatal(err)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 60
	}
	return &te.Input{Net: net, Tunnels: upd.Tunnels, Demands: demands, Scenarios: set, Beta: 0.99}
}

func benchOptimizer(b *testing.B, opt *core.Optimizer) {
	in := ablationInput(b)
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		res, err := opt.Solve(in)
		if err != nil {
			b.Fatal(err)
		}
		iters = res.Iterations
	}
	b.ReportMetric(float64(iters), "benders-iters")
}

// BenchmarkAblationFull is the production configuration.
func BenchmarkAblationFull(b *testing.B) {
	benchOptimizer(b, core.DefaultOptimizer())
}

// BenchmarkAblationNoStructuralCuts shows the cost of dropping the
// bottleneck-capacity seeding cuts.
func BenchmarkAblationNoStructuralCuts(b *testing.B) {
	opt := core.DefaultOptimizer()
	opt.DisableStructuralCuts = true
	benchOptimizer(b, opt)
}

// BenchmarkAblationNoPolish shows the cost (savings) of skipping the
// satisfaction-maximizing re-solve.
func BenchmarkAblationNoPolish(b *testing.B) {
	opt := core.DefaultOptimizer()
	opt.DisablePolish = true
	benchOptimizer(b, opt)
}

// BenchmarkAblationFFCClassMerge measures FFC-2 on IBM, whose tractability
// rests entirely on the per-flow class merging (27k raw coverage rows
// collapse to a few hundred).
func BenchmarkAblationFFCClassMerge(b *testing.B) {
	net, err := topology.IBM()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := routing.BuildTunnels(net, routing.Flows(net), 4)
	if err != nil {
		b.Fatal(err)
	}
	demands := make(te.Demands, len(ts.Flows))
	for i := range demands {
		demands[i] = 60
	}
	in := &te.Input{
		Net: net, Tunnels: ts, Demands: demands, Beta: 0.99,
		Scenarios: &scenario.Set{Scenarios: []scenario.Scenario{{Prob: 1}}, Covered: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (te.FFC{K: 2}).Plan(in); err != nil {
			b.Fatal(err)
		}
	}
}
