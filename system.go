package prete

import (
	"fmt"
	"sync"

	"prete/internal/core"
	"prete/internal/ingest"
	"prete/internal/obs"
	"prete/internal/optical"
	"prete/internal/par"
	"prete/internal/routing"
	"prete/internal/telemetry"
)

// Config tunes a System.
type Config struct {
	// Beta is the target availability level (constraint 5).
	Beta float64
	// Alpha is the fraction of predictable fiber cuts (Theorem 4.1).
	Alpha float64
	// TunnelRatio is the number of reactive tunnels established per
	// affected tunnel on a degradation signal (Algorithm 1; §6.4).
	TunnelRatio float64
	// TunnelsPerFlow sizes the pre-established tunnel table.
	TunnelsPerFlow int
	// ConfirmSamples is the detector's per-transition confirmation count.
	ConfirmSamples int
	// Scenario bounds failure-scenario enumeration.
	Scenario ScenarioOptions
	// StaticPI is the per-fiber static failure probability p_i; when nil a
	// uniform 1e-3 is assumed.
	StaticPI []float64
	// Flows overrides the planned flow set; when nil, one flow per
	// directed IP adjacency is used (the Table 3 convention).
	Flows []Flow
	// Parallelism bounds the worker count of the optimizer's class
	// construction and of ObserveBatch's per-fiber fan-out: <= 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the serial path. Plans and events are
	// bit-identical at every setting (see internal/par).
	Parallelism int
	// Metrics, when non-nil, receives the system's observability series:
	// telemetry.* from the per-fiber detectors and batch ingestion,
	// core.epoch.* stage timings, and core.benders.* / core.lp.* from the
	// optimizer. Metrics are write-only — plans and events are bit-identical
	// with Metrics set or nil.
	Metrics *obs.Registry
}

// DefaultConfig returns the paper's defaults (beta 99%, alpha 25%,
// ratio 1, 4 tunnels per flow).
func DefaultConfig() Config {
	return Config{
		Beta:           0.99,
		Alpha:          0.25,
		TunnelRatio:    1,
		TunnelsPerFlow: 4,
		ConfirmSamples: 2,
		Scenario:       core.New().ScenarioOpts,
	}
}

// System is the full PreTE pipeline of Fig 8: telemetry detectors per
// fiber, the failure predictor, Algorithm 1's tunnel updater, and the
// Benders-based optimizer. It is safe for concurrent telemetry ingestion
// (one goroutine per fiber collector is the expected deployment shape).
type System struct {
	net     *Network
	cfg     Config
	tunnels *TunnelSet
	engine  *core.PreTE

	mu        sync.Mutex
	detectors map[FiberID]*telemetry.Detector
	predictor Predictor
	signals   map[FiberID]DegradationSignal
	conduits  map[FiberID][]FiberID
}

// NewSystem builds a System over the network with flows on every directed
// IP adjacency.
func NewSystem(net *Network, cfg Config) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("prete: nil network")
	}
	if cfg.TunnelsPerFlow < 1 {
		cfg.TunnelsPerFlow = 4
	}
	if cfg.Beta <= 0 || cfg.Beta >= 1 {
		return nil, fmt.Errorf("prete: beta %v out of (0,1)", cfg.Beta)
	}
	flows := cfg.Flows
	if flows == nil {
		flows = routing.Flows(net)
	}
	tunnels, err := routing.BuildTunnels(net, flows, cfg.TunnelsPerFlow)
	if err != nil {
		return nil, err
	}
	if cfg.StaticPI == nil {
		cfg.StaticPI = make([]float64, len(net.Fibers))
		for i := range cfg.StaticPI {
			cfg.StaticPI[i] = 1e-3
		}
	}
	if len(cfg.StaticPI) != len(net.Fibers) {
		return nil, fmt.Errorf("prete: %d static probabilities for %d fibers", len(cfg.StaticPI), len(net.Fibers))
	}
	engine := core.New()
	engine.Alpha = cfg.Alpha
	engine.TunnelRatio = cfg.TunnelRatio
	engine.ScenarioOpts = cfg.Scenario
	engine.Opt.Parallelism = cfg.Parallelism
	engine.Opt.Metrics = cfg.Metrics
	return &System{
		net: net, cfg: cfg, tunnels: tunnels, engine: engine,
		detectors: make(map[FiberID]*telemetry.Detector),
		signals:   make(map[FiberID]DegradationSignal),
		conduits:  telemetry.ConduitGroups(net),
	}, nil
}

// SetPredictor installs the failure predictor (a trained NN or any other
// Predictor). Without one, degradations assume the measured mean
// conditional failure probability of 0.40 (§3.2).
func (s *System) SetPredictor(p Predictor) {
	s.mu.Lock()
	s.predictor = p
	s.mu.Unlock()
}

// Tunnels exposes the pre-established tunnel table.
func (s *System) Tunnels() *TunnelSet { return s.tunnels }

// Flows returns the flow set the system plans for.
func (s *System) Flows() []Flow { return s.tunnels.Flows }

// Observe ingests one telemetry sample for a fiber, running the detector
// and — on a confirmed degradation — the predictor. It returns the events
// the sample triggered.
func (s *System) Observe(fiber FiberID, sample Sample) ([]telemetry.Event, error) {
	if int(fiber) < 0 || int(fiber) >= len(s.net.Fibers) {
		return nil, fmt.Errorf("prete: fiber %d out of range", fiber)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	det, ok := s.detectors[fiber]
	if !ok {
		det = telemetry.NewDetector(s.cfg.ConfirmSamples)
		det.SetMetrics(s.cfg.Metrics)
		s.detectors[fiber] = det
	}
	events := det.Observe(sample)
	for _, ev := range events {
		switch ev.Type {
		case telemetry.DegradationStart:
			pNN := 0.40 // the measured P(cut | degradation) fallback
			if s.predictor != nil && len(ev.Window) > 0 {
				f := s.net.Fiber(fiber)
				feats, err := optical.ExtractFeatures(ev.Window, int(fiber), f.Region, f.Vendor, f.LengthKm)
				if err == nil {
					pNN = s.predictor.PredictProb(feats)
				}
			}
			// §3.1: fibers sharing a conduit degrade (and will likely cut)
			// together — the signal covers the whole group.
			for _, member := range s.conduits[fiber] {
				s.signals[member] = DegradationSignal{Fiber: member, PNN: pNN}
			}
		case telemetry.DegradationEnd, telemetry.Repaired:
			for _, member := range s.conduits[fiber] {
				delete(s.signals, member)
			}
		}
	}
	return events, nil
}

// ObserveBatch ingests whole per-fiber sample series at once — the
// collection-interval replay shape — and returns each fiber's events in
// input order. The per-fiber work (detector state machine plus feature
// extraction, both pure per fiber) fans out across Config.Parallelism
// workers; the predictor and conduit signal updates then run serially in
// input order, so the resulting signal state and returned events are
// identical to feeding every sample through Observe one at a time, at any
// parallelism setting. Each fiber may appear at most once per batch (its
// detector is owned by one task).
func (s *System) ObserveBatch(series []telemetry.FiberSeries) ([][]telemetry.Event, error) {
	seen := make(map[int]bool, len(series))
	for _, fs := range series {
		if fs.Fiber < 0 || fs.Fiber >= len(s.net.Fibers) {
			return nil, fmt.Errorf("prete: fiber %d out of range", fs.Fiber)
		}
		if seen[fs.Fiber] {
			return nil, fmt.Errorf("prete: fiber %d appears twice in batch", fs.Fiber)
		}
		seen[fs.Fiber] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Materialize each fiber's detector up front so the parallel phase
	// never touches the shared map.
	dets := make([]*telemetry.Detector, len(series))
	for i, fs := range series {
		det, ok := s.detectors[FiberID(fs.Fiber)]
		if !ok {
			det = telemetry.NewDetector(s.cfg.ConfirmSamples)
			det.SetMetrics(s.cfg.Metrics)
			s.detectors[FiberID(fs.Fiber)] = det
		}
		dets[i] = det
	}
	reg := s.cfg.Metrics
	reg.Counter("telemetry.batch.runs").Inc()
	reg.Counter("telemetry.batch.fibers").Add(int64(len(series)))
	batchT := reg.Timer("telemetry.batch.latency")
	batchStart := batchT.Start()
	// Parallel phase: detector state machine + feature extraction, both
	// pure per fiber. The predictor (whose forward pass need not be
	// goroutine-safe) stays out of this phase.
	type annotated struct {
		events   []telemetry.Event
		feats    []optical.Features // parallel to events
		hasFeats []bool
	}
	results := par.Map(len(series), s.cfg.Parallelism, func(i int) annotated {
		fs := series[i]
		events := dets[i].ObserveSeries(fs.Samples)
		a := annotated{
			events:   events,
			feats:    make([]optical.Features, len(events)),
			hasFeats: make([]bool, len(events)),
		}
		for ei, ev := range events {
			if ev.Type != telemetry.DegradationStart || len(ev.Window) == 0 {
				continue
			}
			f := s.net.Fiber(FiberID(fs.Fiber))
			feats, err := optical.ExtractFeatures(ev.Window, fs.Fiber, f.Region, f.Vendor, f.LengthKm)
			if err == nil {
				a.feats[ei] = feats
				a.hasFeats[ei] = true
			}
		}
		return a
	})
	batchT.Stop(batchStart)
	// Serial phase, in input order: prediction and conduit signal fan-out,
	// exactly as Observe would apply them.
	out := make([][]telemetry.Event, len(series))
	var nEvents int64
	for i, fs := range series {
		out[i] = results[i].events
		nEvents += int64(len(results[i].events))
		for ei, ev := range results[i].events {
			switch ev.Type {
			case telemetry.DegradationStart:
				pNN := 0.40 // the measured P(cut | degradation) fallback
				if s.predictor != nil && results[i].hasFeats[ei] {
					pNN = s.predictor.PredictProb(results[i].feats[ei])
				}
				for _, member := range s.conduits[FiberID(fs.Fiber)] {
					s.signals[member] = DegradationSignal{Fiber: member, PNN: pNN}
				}
			case telemetry.DegradationEnd, telemetry.Repaired:
				for _, member := range s.conduits[FiberID(fs.Fiber)] {
					delete(s.signals, member)
				}
			}
		}
	}
	reg.Counter("telemetry.batch.events").Add(nEvents)
	return out, nil
}

// Stream is a live streaming-ingest session bound to a System: telemetry
// arrivals flow through an internal/ingest pipeline (sharded rings,
// watermark backpressure, windowed flush), and every flushed event updates
// the system's degradation-signal state exactly as Observe would — the
// predictor and conduit fan-out run serially in ascending fiber order, so
// the resulting signal state is deterministic at every shard count and
// parallelism setting. A Stream owns its fibers' detectors; do not mix it
// with Observe/ObserveBatch calls for the same fibers.
type Stream struct {
	sys  *System
	pipe *ingest.Pipeline
}

// OpenStream starts a streaming ingest session over the system's network.
// The pipeline inherits the system's confirmation count, parallelism, and
// metrics registry; the remaining knobs (shards, ring capacity, watermark,
// drain budget, flush window) come from cfg.
func (s *System) OpenStream(cfg ingest.Config) (*Stream, error) {
	cfg.ConfirmSamples = s.cfg.ConfirmSamples
	cfg.Parallelism = s.cfg.Parallelism
	cfg.Metrics = s.cfg.Metrics
	pipe, err := ingest.New(s.net, cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{sys: s, pipe: pipe}, nil
}

// Tick advances the stream by one logical tick (see ingest.Pipeline.Tick)
// and applies any flushed events to the system's signal state. The flushed
// batches are returned for callers that also want the raw events.
func (st *Stream) Tick(arrivals []ingest.Arrival) ([]ingest.FiberEvents, error) {
	batches, err := st.pipe.Tick(arrivals)
	if err != nil {
		return nil, err
	}
	st.apply(batches)
	return batches, nil
}

// Flush ends the stream's current window unconditionally (see
// ingest.Pipeline.Flush) and applies the remaining events.
func (st *Stream) Flush() ([]ingest.FiberEvents, error) {
	batches, err := st.pipe.Flush()
	if err != nil {
		return nil, err
	}
	st.apply(batches)
	return batches, nil
}

// Stats snapshots the pipeline's exact drop/merge accounting.
func (st *Stream) Stats() ingest.Stats { return st.pipe.Stats() }

// apply replays flushed events onto the signal state under the system
// lock, exactly as ObserveBatch's serial phase would.
func (st *Stream) apply(batches []ingest.FiberEvents) {
	if len(batches) == 0 {
		return
	}
	s := st.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range batches {
		for _, ev := range b.Events {
			switch ev.Type {
			case telemetry.DegradationStart:
				pNN := 0.40 // the measured P(cut | degradation) fallback
				if s.predictor != nil && ev.HasFeatures {
					pNN = s.predictor.PredictProb(ev.Features)
				}
				for _, member := range s.conduits[FiberID(b.Fiber)] {
					s.signals[member] = DegradationSignal{Fiber: member, PNN: pNN}
				}
			case telemetry.DegradationEnd, telemetry.Repaired:
				for _, member := range s.conduits[FiberID(b.Fiber)] {
					delete(s.signals, member)
				}
			}
		}
	}
}

// ActiveSignals returns the degradation signals currently in force.
func (s *System) ActiveSignals() []DegradationSignal {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DegradationSignal, 0, len(s.signals))
	for _, sig := range s.signals {
		out = append(out, sig)
	}
	return out
}

// ClearSignals resets degradation state (e.g. after the TE period passes
// without a failure and tunnels are restored, §4.2).
func (s *System) ClearSignals() {
	s.mu.Lock()
	s.signals = make(map[FiberID]DegradationSignal)
	s.mu.Unlock()
}

// PlanEpoch runs the full pipeline for one TE period with the currently
// active degradation signals.
func (s *System) PlanEpoch(demands Demands) (*EpochPlan, error) {
	return s.engine.PlanEpoch(core.EpochInput{
		Net:     s.net,
		Tunnels: s.tunnels,
		Demands: demands,
		Beta:    s.cfg.Beta,
		PI:      s.cfg.StaticPI,
		Signals: s.ActiveSignals(),
	})
}

// FailedLinks maps a cut set to the IP links it downs (convenience
// re-export for callers reacting to failures).
func (s *System) FailedLinks(cut map[FiberID]bool) map[LinkID]bool {
	return s.net.FailedLinks(cut)
}
