package prete

// Streaming-ingest benchmarks on B4 scale (19 fibers at one sample per
// second each). BenchmarkIngestSustained drives the internal/ingest
// pipeline tick by tick and reports sustained throughput (samples/s) plus
// the p99 per-tick ingest latency. BenchmarkIngestEpochReplay is the
// honest "equivalent ProcessBatch replay" baseline: a batch pipeline has
// no detector state between calls, so replaying at production rate means
// re-processing the accumulated epoch window on every tick (a growing
// window, epoch length E below). TestIngestSustainedSpeedup pins the
// acceptance criterion: the streaming path sustains at least 10x the
// baseline's effective sample rate, with buffering bounded by the ring
// capacity at all times.

import (
	"fmt"
	"runtime"
	"sort"
	"testing"
	"time"

	"prete/internal/ingest"
	"prete/internal/optical"
	"prete/internal/stats"
	"prete/internal/telemetry"
	"prete/internal/topology"
)

// ingestEpochTicks is the TE-period epoch length (seconds at 1 Hz) both
// the streaming run and the replay baseline cover.
const ingestEpochTicks = 120

// b4IngestSeries synthesizes one epoch of per-second telemetry for every
// B4 fiber: degradation episodes with missing samples, a third of them
// leading to cuts — the same shapes the batch benchmarks use.
func b4IngestSeries(tb testing.TB, ticks int) (*topology.Network, []telemetry.FiberSeries) {
	tb.Helper()
	net, err := topology.B4()
	if err != nil {
		tb.Fatal(err)
	}
	series := make([]telemetry.FiberSeries, len(net.Fibers))
	for i := range net.Fibers {
		rng := stats.SubRNG(11, uint64(i))
		fsim := optical.NewFiberSim(net.Fibers[i].LengthKm, rng)
		samples, err := fsim.EpisodeSeries(optical.DegradationProfile{
			DegreeDB: 4 + 4*rng.Float64(), GradientDB: 0.05,
			FluctAmpDB: 0.3, FluctPeriodS: 20,
			DurationS: ticks / 2, LeadsToCut: i%3 == 0, CutDelayS: ticks / 3, RepairS: 20,
			OnsetUnixS: 1700000000 + int64(i)*13, MissingSample: 0.05,
		}, ticks/4)
		if err != nil {
			tb.Fatal(err)
		}
		if len(samples) > ticks {
			samples = samples[:ticks]
		}
		series[i] = telemetry.FiberSeries{Fiber: i, Samples: samples}
	}
	return net, series
}

// runIngestEpoch replays one epoch through a fresh pipeline — one sample
// per fiber per tick — and returns the total samples fed, the per-tick
// latencies, and the final stats.
func runIngestEpoch(tb testing.TB, net *topology.Network, series []telemetry.FiberSeries, cfg ingest.Config, latencies []time.Duration) (int, []time.Duration, ingest.Stats) {
	tb.Helper()
	p, err := ingest.New(net, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	fed := 0
	arrivals := make([]ingest.Arrival, 0, len(series))
	for tick := 0; ; tick++ {
		arrivals = arrivals[:0]
		for _, fs := range series {
			if tick < len(fs.Samples) {
				arrivals = append(arrivals, ingest.Arrival{Fiber: fs.Fiber, Sample: fs.Samples[tick]})
			}
		}
		if len(arrivals) == 0 {
			break
		}
		fed += len(arrivals)
		t0 := time.Now()
		if _, err := p.Tick(arrivals); err != nil {
			tb.Fatal(err)
		}
		latencies = append(latencies, time.Since(t0))
		if st := p.Stats(); st.Queued > int64(len(series)*cfg.RingCapacity) {
			tb.Fatalf("buffering exceeded the ring bound: %d queued > %d fibers x %d capacity",
				st.Queued, len(series), cfg.RingCapacity)
		}
	}
	if _, err := p.Flush(); err != nil {
		tb.Fatal(err)
	}
	return fed, latencies, p.Stats()
}

// BenchmarkIngestSustained measures sustained streaming ingest on B4 at
// several shard counts, reporting samples/s and the p99 per-tick latency.
func BenchmarkIngestSustained(b *testing.B) {
	net, series := b4IngestSeries(b, ingestEpochTicks)
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			cfg := ingest.DefaultConfig()
			cfg.Shards = shards
			b.ReportAllocs()
			var lat []time.Duration
			total := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fed, l, _ := runIngestEpoch(b, net, series, cfg, lat[:0])
				lat, total = l, total+fed
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			if len(lat) > 0 {
				b.ReportMetric(float64(lat[len(lat)*99/100])/1e3, "p99-us/tick")
			}
		})
	}
}

// epochReplayBaseline runs the equivalent batch replay once: at every tick
// the accumulated window is re-processed through ProcessBatch (a fresh
// batch call holds no detector state, so this is what replaying the stream
// through the batch API at production rate costs). Returns the number of
// unique samples delivered — the same count the streaming run feeds.
func epochReplayBaseline(tb testing.TB, net *topology.Network, series []telemetry.FiberSeries) int {
	tb.Helper()
	fed := 0
	window := make([]telemetry.FiberSeries, len(series))
	for i, fs := range series {
		window[i] = telemetry.FiberSeries{Fiber: fs.Fiber}
	}
	for tick := 0; ; tick++ {
		grew := false
		for i, fs := range series {
			if tick < len(fs.Samples) {
				window[i].Samples = fs.Samples[:tick+1]
				fed++
				grew = true
			}
		}
		if !grew {
			break
		}
		if _, err := telemetry.ProcessBatch(net, window, 2, 1); err != nil {
			tb.Fatal(err)
		}
	}
	return fed
}

// BenchmarkIngestEpochReplay is the baseline BenchmarkIngestSustained is
// judged against: per-tick ProcessBatch over the growing epoch window.
// samples/s counts unique samples delivered, not re-parses, so the two
// benchmarks' throughput numbers are directly comparable.
func BenchmarkIngestEpochReplay(b *testing.B) {
	net, series := b4IngestSeries(b, ingestEpochTicks)
	b.ReportAllocs()
	total := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total += epochReplayBaseline(b, net, series)
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/s")
}

// TestIngestSustainedSpeedup pins the PR's acceptance criterion: on
// B4-scale input the streaming pipeline sustains at least 10x the
// equivalent ProcessBatch replay rate, with in-flight buffering bounded by
// the ring capacity (checked inside runIngestEpoch on every tick).
func TestIngestSustainedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive throughput comparison")
	}
	// Two epochs of input: the baseline's re-parse cost grows quadratically
	// with the window, so a longer run both reflects sustained operation and
	// keeps the measured ratio out of timer noise.
	net, series := b4IngestSeries(t, 2*ingestEpochTicks)
	// 19 fibers is far below the scale where shard fan-out pays for its
	// goroutine handoffs, so measure the serial configuration — the
	// determinism contract makes its output identical to any other.
	cfg := ingest.DefaultConfig()
	cfg.Shards = 1
	cfg.Parallelism = 1
	best := func(run func() int) float64 {
		run() // warm-up: heap growth and cache fills stay out of the timings
		rate := 0.0
		for rep := 0; rep < 5; rep++ {
			t0 := time.Now()
			fed := run()
			if r := float64(fed) / time.Since(t0).Seconds(); r > rate {
				rate = r
			}
		}
		return rate
	}
	streamRate := best(func() int {
		fed, _, st := runIngestEpoch(t, net, series, cfg, nil)
		if st.Dropped != 0 || st.Merged != 0 {
			t.Fatalf("benchmark schedule triggered backpressure: %+v", st)
		}
		return fed
	})
	replayRate := best(func() int { return epochReplayBaseline(t, net, series) })
	if streamRate < 10*replayRate {
		t.Fatalf("streaming ingest sustains %.0f samples/s, want >= 10x the %.0f samples/s replay baseline",
			streamRate, replayRate)
	}
	t.Logf("streaming %.0f samples/s vs replay %.0f samples/s (%.1fx)", streamRate, replayRate, streamRate/replayRate)
}
