package prete

// SLO-class benchmarks: the strict-priority classed solve (three
// sequential Benders solves on residual networks — the per-epoch price of
// class-aware planning) and one admission-ladder tick (the controller-side
// cost of turning a classed result into per-tier admit/shed/defer
// decisions, which must stay negligible next to any solve).

import (
	"testing"

	"prete/internal/core"
	"prete/internal/te"
	"prete/internal/wan"
)

func BenchmarkSolveClassed(b *testing.B) {
	in := anytimeInput(b, "B4")
	spec := te.DefaultClassSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DefaultOptimizer().SolveClassed(in, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdmissionTick(b *testing.B) {
	spec := te.DefaultClassSpec()
	cr := &core.ClassedResult{Alloc: make(te.Allocation)}
	for k, tier := range spec.Tiers {
		cr.Tiers = append(cr.Tiers, core.TierResult{
			Name: tier.Name, Policy: tier.Policy, Weight: tier.Weight,
			Offered: 100 * float64(k+1), Res: &core.Result{},
			ExpectedLoss: 0.1 * float64(k),
		})
	}
	adm := wan.NewAdmission(spec, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := adm.Decide(cr, true)
		if err := dec.Check(); err != nil {
			b.Fatal(err)
		}
	}
}
